"""The shard execution engine.

``ShardExecutor`` runs a picklable shard function over a shard plan:

- ``parallelism <= 1`` → serial in-process execution (the debugging
  fallback: no pickling, no subprocesses, identical results);
- ``parallelism > 1`` → a :class:`concurrent.futures.ProcessPoolExecutor`
  with ``parallelism`` workers.

Either way the executor consults an optional :class:`CheckpointStore`
(completed shards load instead of recomputing and new completions are
spilled immediately), retries crashed shards with exponential backoff,
and reports lifecycle transitions to a :class:`ProgressTracker`.
Results are returned in *shard-index order* regardless of completion
order, which is what makes downstream merges reproducible.

The per-shard ``timeout`` bounds each attempt's wall time, measured
from submission — which in pool mode includes any time spent queued
for a free worker, so size it generously when shards outnumber
workers.  In pool mode an attempt that exceeds it counts as a
failed attempt and is resubmitted; a worker crash that breaks the pool
(segfault, OOM kill → :class:`BrokenProcessPool`) also counts as a
failed attempt, and the pool is rebuilt before the retry.  In serial
mode a running shard cannot be interrupted, so the timeout is checked
after the attempt returns — a too-slow shard still counts as failed.
A truly hung worker keeps its (abandoned) process until interpreter
exit — acceptable for simulation workloads, where a "hang" is a
runaway simulation rather than blocked I/O.
"""

from __future__ import annotations

import concurrent.futures
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.metrics.registry import (
    HOST,
    NULL_COUNTER,
    NULL_HISTOGRAM,
    MetricsRegistry,
    log_buckets,
)
from repro.runner.checkpoint import CheckpointStore
from repro.runner.codec import query_count as _query_count
from repro.runner.progress import ProgressTracker
from repro.runner.shard import Shard

__all__ = ["RetryPolicy", "ShardError", "ShardOutcome", "ShardExecutor"]

#: Per-shard wall-time buckets: 1 ms .. 1 h.  Host-domain telemetry only —
#: wall clocks never enter the deterministic (sim) snapshot.
SHARD_WALL_BUCKETS = log_buckets(0.001, 3600.0, per_decade=2)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff for crashed shards."""

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        return self.backoff * (self.backoff_factor ** (attempt - 1))


class ShardError(RuntimeError):
    """A shard exhausted its retry budget."""

    def __init__(self, shard: Shard, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard.index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


@dataclass
class ShardOutcome:
    """One shard's result plus execution bookkeeping."""

    shard: Shard
    value: Any
    attempts: int
    #: True when the value came from a checkpoint, not a fresh run.
    cached: bool = False
    wall_seconds: float = 0.0


def _call_profiled(
    fn: Callable[..., Any], path: str, shard: Shard, kwargs: dict[str, Any]
) -> Any:
    """Pool-side wrapper: run one shard under cProfile, dump to ``path``.

    Module-level so it pickles into workers; the stats file is written
    even when the shard raises, so a crashing shard still leaves data.
    """
    import cProfile

    profile = cProfile.Profile()
    try:
        return profile.runcall(fn, shard, **kwargs)
    finally:
        profile.dump_stats(path)


@dataclass
class ShardExecutor:
    """Runs ``fn(shard, **kwargs)`` over a shard plan."""

    parallelism: int = 1
    timeout: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: Optional[CheckpointStore] = None
    tracker: Optional[ProgressTracker] = None
    #: Host-domain execution telemetry lands here when set (wall times,
    #: retries, checkpoint hits); sim-domain metrics come from the shards.
    metrics: Optional[MetricsRegistry] = None
    #: Injectable sleep, so tests can pin backoff waits.
    sleep: Callable[[float], None] = time.sleep
    #: Run once in every worker process before any shard executes (and
    #: once in-process on the serial path, for symmetry).  Campaigns use
    #: it to prewarm the per-process world cache so the first shard a
    #: worker receives doesn't pay world construction.  Must be a
    #: module-level callable; ``initargs`` must pickle.
    initializer: Optional[Callable[..., None]] = None
    initargs: tuple = ()
    #: When set, each shard attempt runs under cProfile and dumps to
    #: ``f"{profile_path}.shard-NNNN"`` (per attempt; the last attempt
    #: wins).  Works in both pool and serial modes — ``repro run
    #: --profile`` prefers a single whole-campaign profile when serial.
    profile_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.metrics is not None:
            self._m_wall = self.metrics.histogram(
                "runner.shard_wall_seconds", SHARD_WALL_BUCKETS, domain=HOST
            )
            self._m_completed = self.metrics.counter(
                "runner.shards_completed", domain=HOST
            )
            self._m_cached = self.metrics.counter(
                "runner.shards_cached", domain=HOST
            )
            self._m_retries = self.metrics.counter("runner.retries", domain=HOST)
            self._m_failures = self.metrics.counter("runner.failures", domain=HOST)
        else:
            self._m_wall = NULL_HISTOGRAM
            self._m_completed = self._m_cached = NULL_COUNTER
            self._m_retries = self._m_failures = NULL_COUNTER

    def run(
        self,
        fn: Callable[..., Any],
        shards: Sequence[Shard],
        kwargs: Optional[dict[str, Any]] = None,
    ) -> list[ShardOutcome]:
        """Execute every shard; returns outcomes sorted by shard index.

        ``fn`` must be a module-level callable and ``kwargs`` picklable
        when ``parallelism > 1``.  Raises :class:`ShardError` once any
        shard exhausts :class:`RetryPolicy.max_attempts`; shards that
        completed before the failure remain checkpointed, so a rerun
        resumes rather than recomputes.
        """
        kwargs = kwargs or {}
        if self.tracker is not None:
            self.tracker.shards_total = len(shards)
            self.tracker.start()
        cached, pending = self._split_checkpointed(shards)
        if self.parallelism <= 1:
            fresh = self._run_serial(fn, pending, kwargs)
        else:
            fresh = self._run_pool(fn, pending, kwargs)
        outcomes = sorted(cached + fresh, key=lambda o: o.shard.index)
        if self.tracker is not None:
            self.tracker.done()
        return outcomes

    # -- checkpoint handling -------------------------------------------------
    def _split_checkpointed(
        self, shards: Sequence[Shard]
    ) -> tuple[list[ShardOutcome], list[Shard]]:
        cached: list[ShardOutcome] = []
        pending: list[Shard] = []
        for shard in shards:
            if self.checkpoint is not None and self.checkpoint.has(shard.index):
                value = self.checkpoint.load(shard.index)
                cached.append(
                    ShardOutcome(shard=shard, value=value, attempts=0, cached=True)
                )
                self._m_cached.inc()
                if self.tracker is not None:
                    self.tracker.shard_done(
                        shard.index, queries=_query_count(value), cached=True
                    )
            else:
                pending.append(shard)
        return cached, pending

    def _record(self, shard: Shard, value: Any, attempts: int, wall: float) -> ShardOutcome:
        if self.checkpoint is not None:
            self.checkpoint.save(shard.index, value)
        self._m_completed.inc()
        self._m_wall.observe(wall)
        if self.tracker is not None:
            self.tracker.shard_done(shard.index, queries=_query_count(value))
        return ShardOutcome(
            shard=shard, value=value, attempts=attempts, wall_seconds=wall
        )

    def _note_failure(self, shard: Shard, attempt: int, final: bool) -> None:
        if final:
            self._m_failures.inc()
        else:
            self._m_retries.inc()
        if self.tracker is None:
            return
        if final:
            self.tracker.shard_failed(shard.index, attempt)
        else:
            self.tracker.shard_retry(shard.index, attempt)

    def _shard_profile_path(self, index: int) -> str:
        return f"{self.profile_path}.shard-{index:04d}"

    # -- serial fallback -----------------------------------------------------
    def _run_serial(
        self, fn: Callable[..., Any], shards: Sequence[Shard], kwargs: dict[str, Any]
    ) -> list[ShardOutcome]:
        if shards and self.initializer is not None:
            self.initializer(*self.initargs)
        outcomes: list[ShardOutcome] = []
        for shard in shards:
            attempt = 0
            while True:
                attempt += 1
                started = time.monotonic()
                try:
                    if self.profile_path is not None:
                        value = _call_profiled(
                            fn, self._shard_profile_path(shard.index), shard, kwargs
                        )
                    else:
                        value = fn(shard, **kwargs)
                    elapsed = time.monotonic() - started
                    if self.timeout is not None and elapsed > self.timeout:
                        # Serial mode can't interrupt a running shard, so
                        # the budget is checked after the fact; the
                        # attempt still counts as failed, matching pool
                        # mode's per-attempt timeout.
                        raise TimeoutError(
                            f"shard {shard.index} ran {elapsed:.3f}s, "
                            f"over the {self.timeout}s per-shard timeout"
                        )
                except Exception as error:
                    final = attempt >= self.retry.max_attempts
                    self._note_failure(shard, attempt, final)
                    if final:
                        raise ShardError(shard, attempt, error) from error
                    self.sleep(self.retry.delay(attempt))
                    continue
                outcomes.append(
                    self._record(shard, value, attempt, time.monotonic() - started)
                )
                break
        return outcomes

    # -- process pool --------------------------------------------------------
    def _new_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.parallelism,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def _run_pool(
        self, fn: Callable[..., Any], shards: Sequence[Shard], kwargs: dict[str, Any]
    ) -> list[ShardOutcome]:
        import gc

        # Workers fork from this process (Linux default).  Freezing the
        # parent's GC generations first keeps the children's collector
        # from traversing — and so copy-on-write faulting — every page
        # the parent heap holds at fork time; with a large ResultSet
        # already in memory (serial-vs-parallel comparisons, multi-stage
        # campaigns) that thrash costs ~20% of 4-worker wall time on a
        # 1-core host.  Unfrozen once the pool is done.
        gc.collect()
        gc.freeze()
        outcomes: list[ShardOutcome] = []
        attempts = {shard.index: 0 for shard in shards}
        by_index = {shard.index: shard for shard in shards}
        pending: dict[int, concurrent.futures.Future] = {}
        started: dict[int, float] = {}
        pool = self._new_pool()

        def submit(index: int) -> None:
            started[index] = time.monotonic()
            if self.profile_path is not None:
                pending[index] = pool.submit(
                    _call_profiled,
                    fn,
                    self._shard_profile_path(index),
                    by_index[index],
                    kwargs,
                )
            else:
                pending[index] = pool.submit(fn, by_index[index], **kwargs)

        def rebuild_pool() -> None:
            # A worker died hard (segfault, OOM kill): the pool is
            # permanently broken and every future still riding on it
            # fails with BrokenProcessPool.  Replace the pool and
            # resubmit every shard that hadn't already delivered a
            # result; completed results survive the crash.
            nonlocal pool
            pool.shutdown(wait=False, cancel_futures=True)
            pool = self._new_pool()
            for index, future in list(pending.items()):
                if future.done() and future.exception() is None:
                    continue
                submit(index)

        try:
            for shard in shards:
                submit(shard.index)
            while pending:
                # Await shards in index order: earlier waits overlap later
                # shards' compute, so this costs nothing in wall time.
                index = min(pending)
                future = pending.pop(index)
                shard = by_index[index]
                attempts[index] += 1
                wait = None
                if self.timeout is not None:
                    # The attempt's clock starts at submission, not when
                    # this loop gets around to awaiting its future.
                    wait = max(
                        0.0, self.timeout - (time.monotonic() - started[index])
                    )
                try:
                    value = future.result(timeout=wait)
                except Exception as error:  # crash, BrokenProcessPool, timeout
                    future.cancel()
                    final = attempts[index] >= self.retry.max_attempts
                    self._note_failure(shard, attempts[index], final)
                    if final:
                        for other in pending.values():
                            other.cancel()
                        raise ShardError(shard, attempts[index], error) from error
                    self.sleep(self.retry.delay(attempts[index]))
                    if isinstance(error, BrokenProcessPool):
                        pending[index] = future  # rebuild resubmits it
                        rebuild_pool()
                    else:
                        try:
                            submit(index)
                        except BrokenProcessPool:
                            # The pool broke between the failure and the
                            # resubmit; recover the same way.
                            pending[index] = future
                            rebuild_pool()
                    continue
                outcomes.append(
                    self._record(
                        shard,
                        value,
                        attempts[index],
                        time.monotonic() - started[index],
                    )
                )
        finally:
            # wait=False: a hung worker must not stall shutdown (the
            # abandoned process is reaped at interpreter exit).
            pool.shutdown(wait=False, cancel_futures=True)
            gc.unfreeze()
        return outcomes
