"""Per-process world cache: zero-rebuild shard workers.

Before this module, every shard paid full world construction — zones,
delegations, servers, topology — even though consecutive shards of one
campaign differ only by seed and probe range.  Worker processes now
build each distinct world **once** and hand it to subsequent shards via
a *seeded reset*: :meth:`repro.core.worlds.World.restore_baseline`
rewinds the topology to its just-built mark, restarts every RNG stream
exactly where a fresh build under the shard seed would, and clears all
runtime residue (metrics hooks, fault injectors, server query logs,
catchment caches, the sim clock).

The equivalence that makes this safe: world *structure* is a pure
function of the builder arguments and never of the seed — all builders
place infrastructure with explicit regions, so the topology RNG is
untouched during construction.  A restored world is therefore
indistinguishable from a rebuilt one (asserted against live campaign
results by the worldcache tests, and by the serial-vs-parallel
byte-identity suite, since serial and pool paths now both lease from
this cache).

The cache is keyed by ``(builder name, canonical kwargs JSON)`` — the
seed deliberately excluded, that's what the reset is for — bounded LRU
(campaigns touch one or two worlds; crawl adds a universe), and
per-process: pool workers each warm their own via
:class:`repro.runner.executor.ShardExecutor`'s ``initializer`` hook.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Callable, Optional

__all__ = ["cache_key", "lease", "prewarm", "clear", "stats"]

#: Distinct worlds kept per process.  A campaign uses one world; mixed
#: workloads (tests, back-to-back campaigns) stay under a handful.
MAX_WORLDS = 4

_cache: "OrderedDict[str, tuple[Any, Any]]" = OrderedDict()
_stats = {"builds": 0, "reuses": 0}


def cache_key(builder: str, kwargs: dict[str, Any]) -> str:
    """Canonical cache key for a (builder, kwargs) world identity."""
    return json.dumps(
        {"builder": builder, "kwargs": kwargs}, sort_keys=True, default=str
    )


def lease(key: str, build: Callable[[], Any], seed: int) -> Any:
    """A world for ``key``, reset to ``seed`` as if freshly built.

    On a miss, ``build()`` runs and the result's baseline is captured;
    either way the world is restored to the baseline under ``seed``
    before being returned — the fresh and reused paths are normalized
    through the exact same reset, so there is no "first shard is
    special" state to reason about.  ``build()`` may return a wrapper
    (e.g. ``UyWorld``) carrying a ``.world`` attribute; baselines live
    on the wrapped :class:`~repro.core.worlds.World`.

    The caller owns the lease until its next ``lease()`` call in the
    same process and must not mutate zones or other structure.
    """
    entry = _cache.get(key)
    if entry is None:
        built = build()
        target = getattr(built, "world", built)
        baseline = target.capture_baseline()
        _cache[key] = (built, baseline)
        while len(_cache) > MAX_WORLDS:
            _cache.popitem(last=False)
        _stats["builds"] += 1
    else:
        built, baseline = entry
        _cache.move_to_end(key)
        target = getattr(built, "world", built)
        _stats["reuses"] += 1
    target.restore_baseline(baseline, seed)
    return built


def prewarm(builder: str, world_kwargs: dict[str, Any], seed: int = 0) -> None:
    """Build (or touch) a campaign world ahead of the first shard.

    Used as the process-pool initializer so workers pay world
    construction during pool startup, off every shard's clock.  The
    seed is irrelevant — the first real lease resets it anyway.
    """
    from repro.runner.campaigns import _world_builders

    builders = _world_builders()
    if builder not in builders:
        return
    lease(
        cache_key(builder, world_kwargs),
        lambda: builders[builder](seed, **world_kwargs),
        seed=seed,
    )


def clear() -> None:
    """Drop every cached world and zero the counters (tests; long-lived
    embedding sessions)."""
    _cache.clear()
    _stats["builds"] = 0
    _stats["reuses"] = 0


def stats() -> dict[str, int]:
    """Build/reuse counters for this process (telemetry, tests)."""
    return dict(_stats)
