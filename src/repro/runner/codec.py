"""One versioned codec for every shard payload.

Before this module existed three places each had their own idea of what
a shard payload looked like: :mod:`repro.runner.merge` dug
``value["metrics"]`` out of raw dicts, :mod:`repro.runner.executor`
re-implemented the ``value["queries"]`` lookup for progress telemetry,
and :mod:`repro.runner.checkpoint` pickled whatever shape a shard
function happened to return.  They now all speak through this codec.

A shard function returns :func:`encode_shard_payload`'s envelope::

    {"v": PAYLOAD_VERSION, "kind": ..., "queries": int,
     "metrics": snapshot payload | None, "data": ...}

Two kinds exist:

``"resultset"``
    A :class:`repro.atlas.results.ResultSet` stored *columnar*: one
    deduplicated string table plus flat :mod:`array` columns (int64 /
    int32 / float64) instead of 100k+ per-probe dataclass objects.  The
    pickle for a 160k-query shard shrinks ~6x and, more importantly,
    encode/decode avoids pickling a deep object graph through the pool
    pipe.  Floats travel in IEEE-754 ``array('d')`` cells so decode is
    bit-exact; decode rebuilds value-equal :class:`MeasurementResult`
    rows (asserted by the codec round-trip tests).

``"pickle"``
    Anything else (controlled/ddos/prefetch/crawl result objects)
    passes through untouched — the envelope still carries the uniform
    ``queries``/``metrics`` fields every consumer needs.

:func:`decode_shard_payload` returns the legacy
``{"results": ..., "queries": int, "metrics": payload}`` dict the
scenario-layer mergers have always consumed, so everything downstream
of :func:`repro.core.scenarios._run_sharded_campaign` is unchanged.

Bumping :data:`PAYLOAD_VERSION` deliberately invalidates old run
directories: the version is embedded in every campaign fingerprint, so
resuming a run dir written by an older layout raises
:class:`repro.runner.checkpoint.CheckpointMismatch` instead of merging
garbage.
"""

from __future__ import annotations

from array import array
from typing import Any, Optional

__all__ = [
    "PAYLOAD_VERSION",
    "PayloadError",
    "encode_shard_payload",
    "decode_shard_payload",
    "query_count",
    "metrics_payload",
]

#: Version of the per-shard payload layout.  v3: versioned envelope with
#: columnar ResultSet encoding (v2 was the bare ``{"results", "queries",
#: "metrics"}`` dict of pickled object graphs).
PAYLOAD_VERSION = 3

_TTL_NONE = -1  # TTLs are non-negative; -1 marks ``ttl=None`` in the column.


class PayloadError(RuntimeError):
    """A shard payload does not match the codec's versioned envelope."""


def encode_shard_payload(*, results: Any, queries: int, metrics: Optional[dict]) -> dict:
    """Wrap one shard's output in the versioned payload envelope."""
    from repro.atlas.results import ResultSet

    if isinstance(results, ResultSet):
        kind = "resultset"
        data = _encode_result_set(results)
    else:
        kind = "pickle"
        data = results
    return {
        "v": PAYLOAD_VERSION,
        "kind": kind,
        "queries": int(queries),
        "metrics": metrics,
        "data": data,
    }


def decode_shard_payload(payload: Any) -> dict:
    """Decode an envelope back to ``{"results", "queries", "metrics"}``.

    Already-decoded dicts pass through unchanged, so callers may decode
    defensively.  Anything else — including pre-v3 payloads — raises
    :class:`PayloadError` (the fingerprint's payload version should have
    ruled those out long before decode).
    """
    if not isinstance(payload, dict):
        raise PayloadError(f"shard payload is not a dict: {type(payload).__name__}")
    if "v" not in payload:
        if "results" in payload and "queries" in payload:
            return payload  # already decoded (or built by a serial path)
        raise PayloadError(f"shard payload missing version: keys={sorted(payload)}")
    version = payload["v"]
    if version != PAYLOAD_VERSION:
        raise PayloadError(
            f"shard payload version {version!r} unsupported "
            f"(this build speaks v{PAYLOAD_VERSION})"
        )
    kind = payload.get("kind")
    if kind == "resultset":
        results = _decode_result_set(payload["data"])
    elif kind == "pickle":
        results = payload["data"]
    else:
        raise PayloadError(f"unknown shard payload kind {kind!r}")
    return {
        "results": results,
        "queries": int(payload["queries"]),
        "metrics": payload.get("metrics"),
    }


def query_count(payload: Any) -> int:
    """Best-effort simulated-query count (encoded, decoded, or legacy)."""
    if isinstance(payload, dict) and "queries" in payload:
        try:
            return int(payload["queries"])
        except (TypeError, ValueError):
            return 0
    try:
        return len(payload)
    except TypeError:
        return 0


def metrics_payload(payload: Any) -> Optional[dict]:
    """The shard's metrics snapshot payload, or None when absent."""
    if isinstance(payload, dict):
        return payload.get("metrics")
    return None


# -- columnar ResultSet encoding ---------------------------------------------


def _encode_result_set(result_set: Any) -> dict:
    results = result_set.results
    n = len(results)

    strings: list[str] = []
    intern_index: dict[str, int] = {}

    def intern(text: str) -> int:
        index = intern_index.get(text)
        if index is None:
            index = len(strings)
            intern_index[text] = index
            strings.append(text)
        return index

    probe_id = array("q", bytes(8 * n))
    asn = array("q", bytes(8 * n))
    ttl = array("q", bytes(8 * n))
    vp_id = array("i", bytes(4 * n))
    resolver = array("i", bytes(4 * n))
    region = array("i", bytes(4 * n))
    round_index = array("i", bytes(4 * n))
    qname = array("i", bytes(4 * n))
    qtype = array("i", bytes(4 * n))
    rcode = array("i", bytes(4 * n))
    timestamp = array("d", bytes(8 * n))
    rtt = array("d", bytes(8 * n))
    flags = bytearray(n)

    # Answer tuples repeat massively (every cache hit on the same rrset
    # yields the same tuple), so intern whole tuples in one table and
    # store a single index per result.
    answer_tuples: list[tuple[str, ...]] = []
    answer_index: dict[tuple[str, ...], int] = {}
    answers = array("i", bytes(4 * n))

    for i, result in enumerate(results):
        probe_id[i] = result.probe_id
        asn[i] = result.asn
        ttl[i] = _TTL_NONE if result.ttl is None else result.ttl
        vp_id[i] = intern(result.vp_id)
        resolver[i] = intern(result.resolver_address)
        region[i] = intern(result.region.name)
        round_index[i] = result.round_index
        qname[i] = intern(str(result.qname))
        qtype[i] = int(result.qtype)
        rcode[i] = int(result.rcode)
        timestamp[i] = result.timestamp
        rtt[i] = result.rtt
        flags[i] = (1 if result.cache_hit else 0) | (2 if result.served_stale else 0)
        tup = result.answers
        index = answer_index.get(tup)
        if index is None:
            index = len(answer_tuples)
            answer_index[tup] = index
            answer_tuples.append(tup)
        answers[i] = index

    return {
        "n": n,
        "spec": result_set.spec,
        "strings": strings,
        "answer_tuples": answer_tuples,
        "probe_id": probe_id,
        "asn": asn,
        "ttl": ttl,
        "vp_id": vp_id,
        "resolver": resolver,
        "region": region,
        "round_index": round_index,
        "qname": qname,
        "qtype": qtype,
        "rcode": rcode,
        "timestamp": timestamp,
        "rtt": rtt,
        "flags": bytes(flags),
        "answers": answers,
    }


def _decode_result_set(data: dict) -> Any:
    from repro.atlas.results import MeasurementResult, ResultSet
    from repro.dns.message import Rcode
    from repro.dns.name import Name
    from repro.dns.rdtypes import RdataType
    from repro.net.topology import Region

    n = data["n"]
    strings = data["strings"]
    answer_tuples = data["answer_tuples"]
    # Materialize each distinct value once; rows then share the decoded
    # Name/enum objects exactly like the encoder's inputs did.
    names = [Name(text) for text in strings]
    regions = {index: Region[strings[index]] for index in set(data["region"])}
    qtypes = {value: RdataType(value) for value in set(data["qtype"])}
    rcodes = {value: Rcode(value) for value in set(data["rcode"])}

    probe_id = data["probe_id"]
    asn = data["asn"]
    ttl = data["ttl"]
    vp_id = data["vp_id"]
    resolver = data["resolver"]
    region = data["region"]
    round_index = data["round_index"]
    qname = data["qname"]
    qtype = data["qtype"]
    rcode = data["rcode"]
    timestamp = data["timestamp"]
    rtt = data["rtt"]
    flags = data["flags"]
    answers = data["answers"]

    results = [
        MeasurementResult(
            probe_id=probe_id[i],
            vp_id=strings[vp_id[i]],
            resolver_address=strings[resolver[i]],
            region=regions[region[i]],
            asn=asn[i],
            round_index=round_index[i],
            timestamp=timestamp[i],
            qname=names[qname[i]],
            qtype=qtypes[qtype[i]],
            rcode=rcodes[rcode[i]],
            ttl=None if ttl[i] == _TTL_NONE else ttl[i],
            answers=answer_tuples[answers[i]],
            rtt=rtt[i],
            cache_hit=bool(flags[i] & 1),
            served_stale=bool(flags[i] & 2),
        )
        for i in range(n)
    ]
    return ResultSet(results, spec=data["spec"])
