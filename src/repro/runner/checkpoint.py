"""Completed-shard results spilled to a run directory.

A :class:`CheckpointStore` lets an interrupted campaign resume without
recomputing completed shards: every finished shard's payload is pickled
to ``shard-NNNN.pkl`` (written atomically via a temp file + rename), and
a ``manifest.json`` records the campaign fingerprint — the parameters
that determine the shard plan and per-shard results.  Reopening a run
directory with a different fingerprint fails loudly instead of silently
merging results from a different campaign.

Shard-boundary checkpoints are too coarse for 100k+-query campaigns, so
the store also holds **world snapshots**: versioned ``wsnap-NNNN.pkl``
records carrying a shard's *mid-run* campaign state (the measurement,
its run-state cursor, and the metrics registry, pickled as one graph so
object identity — e.g. the registry the world's fabric holds — is
preserved).  A killed worker resumes from its last snapshot instead of
restarting the shard; completing a shard discards its snapshot.  The
snapshot record is versioned independently of the shard payload layout
(:data:`_WSNAP_VERSION`) because it stores live object graphs, not
codec envelopes.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Any, Optional

__all__ = ["CheckpointMismatch", "CheckpointStore"]

_MANIFEST = "manifest.json"
_FORMAT_VERSION = 1
#: Version of the world-snapshot record layout (mid-shard resume state).
_WSNAP_VERSION = 1


class CheckpointMismatch(RuntimeError):
    """The run directory belongs to a different campaign."""


def _shard_filename(index: int) -> str:
    return f"shard-{index:04d}.pkl"


def _wsnap_filename(index: int) -> str:
    return f"wsnap-{index:04d}.pkl"


class CheckpointStore:
    """Per-shard result spill for one campaign run."""

    def __init__(self, run_dir: str | Path, fingerprint: dict[str, Any]) -> None:
        self.run_dir = Path(run_dir)
        self.fingerprint = _normalize(fingerprint)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._check_or_write_manifest()

    # -- manifest -----------------------------------------------------------
    def _check_or_write_manifest(self) -> None:
        path = self.run_dir / _MANIFEST
        if path.exists():
            recorded = json.loads(path.read_text(encoding="utf-8"))
            if recorded.get("version") != _FORMAT_VERSION:
                raise CheckpointMismatch(
                    f"{path}: unsupported checkpoint format "
                    f"{recorded.get('version')!r}"
                )
            if recorded.get("fingerprint") != self.fingerprint:
                raise CheckpointMismatch(
                    f"{path} was written by a different campaign:\n"
                    f"  recorded: {recorded.get('fingerprint')}\n"
                    f"  current:  {self.fingerprint}"
                )
            return
        payload = {"version": _FORMAT_VERSION, "fingerprint": self.fingerprint}
        _atomic_write_bytes(
            path, (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        )

    # -- shard payloads ------------------------------------------------------
    def save(self, shard_index: int, payload: Any) -> None:
        path = self.run_dir / _shard_filename(shard_index)
        _atomic_write_bytes(path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        # A completed shard's mid-run snapshot is obsolete.
        self.discard_world_snapshot(shard_index)

    def load(self, shard_index: int) -> Any:
        path = self.run_dir / _shard_filename(shard_index)
        with path.open("rb") as handle:
            return pickle.load(handle)

    def has(self, shard_index: int) -> bool:
        return (self.run_dir / _shard_filename(shard_index)).exists()

    def completed_indices(self) -> set[int]:
        done: set[int] = set()
        for path in self.run_dir.glob("shard-*.pkl"):
            stem = path.stem.split("-", 1)[-1]
            if stem.isdigit():
                done.add(int(stem))
        return done

    def discard(self, shard_index: int) -> None:
        path = self.run_dir / _shard_filename(shard_index)
        if path.exists():
            path.unlink()

    def clear(self) -> None:
        """Drop every shard payload and world snapshot (keeps the manifest)."""
        for index in self.completed_indices():
            self.discard(index)
        for path in self.run_dir.glob("wsnap-*.pkl"):
            path.unlink()

    # -- world snapshots (mid-shard resume) ----------------------------------
    def save_world_snapshot(self, shard_index: int, state: Any) -> None:
        """Atomically spill one shard's mid-run campaign state.

        ``state`` is pickled as a single object graph; callers pass every
        piece that must share identity (measurement, run state, metrics
        registry) in one container.
        """
        record = {"version": _WSNAP_VERSION, "shard": shard_index, "state": state}
        path = self.run_dir / _wsnap_filename(shard_index)
        _atomic_write_bytes(
            path, pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def load_world_snapshot(self, shard_index: int) -> Optional[Any]:
        """The shard's saved mid-run state, or ``None`` when absent."""
        path = self.run_dir / _wsnap_filename(shard_index)
        if not path.exists():
            return None
        with path.open("rb") as handle:
            record = pickle.load(handle)
        if not isinstance(record, dict) or record.get("version") != _WSNAP_VERSION:
            raise CheckpointMismatch(
                f"{path}: unsupported world-snapshot version "
                f"{record.get('version') if isinstance(record, dict) else record!r}"
            )
        if record.get("shard") != shard_index:
            raise CheckpointMismatch(
                f"{path}: snapshot belongs to shard {record.get('shard')!r}, "
                f"not {shard_index}"
            )
        return record["state"]

    def has_world_snapshot(self, shard_index: int) -> bool:
        return (self.run_dir / _wsnap_filename(shard_index)).exists()

    def discard_world_snapshot(self, shard_index: int) -> None:
        path = self.run_dir / _wsnap_filename(shard_index)
        if path.exists():
            path.unlink()


def _normalize(fingerprint: dict[str, Any]) -> dict[str, Any]:
    """Round-trip through JSON so equality checks compare what's stored."""
    try:
        return json.loads(json.dumps(fingerprint, sort_keys=True))
    except TypeError as error:
        raise TypeError(
            f"campaign fingerprint must be JSON-serializable: {error}"
        ) from None


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
