"""Order-independent merging of shard outputs, with invariant checks.

Shards complete in whatever order the workers finish; merging must not
depend on that order or the determinism contract breaks.  Each merger
therefore (1) validates the parts — shards must cover *disjoint* unit
ranges, so duplicate probe ids or duplicate crawl domains mean the plan
was wrong or a shard ran twice — and (2) produces a canonically ordered
result: measurement results sorted by virtual time, crawl records by the
universe's list order.  Merging any permutation of the same parts yields
an identical object (asserted property-based in the tests).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.atlas.results import MeasurementResult, ResultSet
from repro.crawler.crawl import CrawlRecord, CrawlResult
from repro.metrics.snapshot import MetricsSnapshot, merge_snapshots
from repro.runner.codec import metrics_payload

__all__ = [
    "MergeError",
    "merge_result_sets",
    "merge_crawl_results",
    "merge_counts",
    "merge_shard_metrics",
]


class MergeError(ValueError):
    """Shard outputs violate a merge invariant."""


def _result_sort_key(result: MeasurementResult) -> tuple:
    return (result.timestamp, result.probe_id, result.vp_id, result.round_index)


def merge_result_sets(
    parts: Iterable[ResultSet], *, check: bool = True
) -> ResultSet:
    """Merge per-shard :class:`ResultSet`s into one canonical set.

    Invariants checked (``check=True``):

    - shards are disjoint: no probe id appears in more than one part;
    - no VP answers the same round twice;
    - virtual timestamps are monotone (non-decreasing) per VP within
      each part — a shard that time-travels was mis-scheduled.
    """
    parts = list(parts)
    if not parts:
        return ResultSet([])
    if check:
        _check_disjoint_probes(parts)
        _check_monotone_timestamps(parts)
    merged: list[MeasurementResult] = []
    for part in parts:
        merged.extend(part.results)
    if check:
        _check_unique_rounds(merged)
    merged.sort(key=_result_sort_key)
    spec = next((part.spec for part in parts if part.spec is not None), None)
    return ResultSet(merged, spec=spec)


def _check_disjoint_probes(parts: list[ResultSet]) -> None:
    seen: dict[int, int] = {}
    for part_index, part in enumerate(parts):
        for probe_id in part.probe_ids():
            if probe_id in seen:
                raise MergeError(
                    f"probe {probe_id} appears in shard outputs "
                    f"{seen[probe_id]} and {part_index}: shards must cover "
                    f"disjoint probe ranges"
                )
            seen[probe_id] = part_index


def _check_monotone_timestamps(parts: list[ResultSet]) -> None:
    for part_index, part in enumerate(parts):
        last: dict[str, float] = {}
        for result in part.results:
            previous = last.get(result.vp_id)
            if previous is not None and result.timestamp < previous:
                raise MergeError(
                    f"shard output {part_index}: VP {result.vp_id} timestamps "
                    f"go backwards ({previous} -> {result.timestamp})"
                )
            last[result.vp_id] = result.timestamp


def _check_unique_rounds(merged: list[MeasurementResult]) -> None:
    seen: set[tuple[str, int]] = set()
    for result in merged:
        key = (result.vp_id, result.round_index)
        if key in seen:
            raise MergeError(
                f"VP {result.vp_id} has two results for round "
                f"{result.round_index}: duplicate shard output?"
            )
        seen.add(key)


def merge_crawl_results(
    parts: Iterable[CrawlResult],
    *,
    check: bool = True,
    queries: Optional[Iterable[int]] = None,
) -> tuple[CrawlResult, int]:
    """Merge per-shard :class:`CrawlResult`s (and query counters).

    Parts arrive keyed by shard index (contiguous domain slices), so
    concatenation in shard order reproduces the serial crawl's record
    order.  Returns ``(result, total_queries)``.
    """
    records: list[CrawlRecord] = []
    for part in parts:
        records.extend(part.records)
    if check:
        seen: set = set()
        for record in records:
            name = record.domain.name
            if name in seen:
                raise MergeError(
                    f"domain {name} crawled twice: shards must cover "
                    f"disjoint list slices"
                )
            seen.add(name)
    total_queries = sum(queries) if queries is not None else 0
    return CrawlResult(records), total_queries


def merge_shard_metrics(values: Iterable[dict]) -> MetricsSnapshot:
    """Fold shard payloads' ``"metrics"`` entries into one exact snapshot.

    Payload-shape knowledge lives in :mod:`repro.runner.codec`; this
    accepts encoded envelopes and decoded dicts alike.  Shards that
    report no metrics contribute the empty identity, so resumed
    mixed-version runs still merge — the fingerprint's payload version
    normally rules those out anyway.
    """
    parts = [
        MetricsSnapshot.from_payload(payload)
        for payload in (metrics_payload(value) for value in values)
        if payload is not None
    ]
    return merge_snapshots(parts)


def merge_counts(parts: Iterable[dict[str, int]]) -> dict[str, int]:
    """Sum per-shard counter dicts (e.g. query-log tallies)."""
    merged: dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return merged
