"""Shared workload-shape primitives.

Query popularity in DNS is Zipfian (Jung et al.), and two parts of this
repo need the same machinery: the load generator draws qnames from a
Zipf distribution to give caches a hit rate to measure, and the
popularity tracker in :mod:`repro.predict` ranks observed names against
the same shape.  One implementation lives here so the two cannot drift.
"""

from repro.workload.zipf import ZipfSampler, qnames_for_ranks

__all__ = ["ZipfSampler", "qnames_for_ranks"]
