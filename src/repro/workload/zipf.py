"""Zipf popularity sampling over a fixed population.

Qname popularity is Zipfian, the canonical shape of DNS demand (Jung et
al.) and what gives a cache a hit rate to measure.  The CDF over ranks
is precomputed once; each draw is a uniform variate plus a bisect —
O(log n), no rejection loop, and exactly reproducible from the caller's
seeded RNG.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Iterable


class ZipfSampler:
    """Zipf(s) draws over ``population`` distinct items.

    >>> sampler = ZipfSampler(population=3, exponent=1.0)
    >>> sampler.rank(random.Random(1)) in (0, 1, 2)
    True
    """

    def __init__(self, population: int, exponent: float = 1.0) -> None:
        if population < 1:
            raise ValueError(f"population must be >= 1, not {population}")
        if exponent < 0:
            raise ValueError(f"exponent cannot be negative ({exponent})")
        self.population = population
        self.exponent = exponent
        weights = [1.0 / math.pow(rank, exponent) for rank in range(1, population + 1)]
        total = math.fsum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        cumulative[-1] = 1.0  # guard against fp shortfall
        self._cdf = cumulative

    def rank(self, rng: random.Random) -> int:
        """One draw: a rank in ``[0, population)``, 0 the most popular."""
        return bisect.bisect_left(self._cdf, rng.random())

    def ranks(self, count: int, rng: random.Random) -> list[int]:
        return [self.rank(rng) for _ in range(count)]


def qnames_for_ranks(template: str, ranks: Iterable[int]) -> list[str]:
    """Render ranks through a qname template like ``www.domain{}.nl.``."""
    if "{}" not in template:
        raise ValueError(f"qname template {template!r} has no {{}} placeholder")
    return [template.format(rank) for rank in ranks]
