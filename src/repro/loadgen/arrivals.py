"""Arrival processes and qname popularity for load generation.

Open-loop load (the only kind that reveals queueing collapse: arrivals
do not slow down when the server does) needs a schedule fixed before the
first packet leaves.  ``fixed_schedule`` spaces queries evenly;
``poisson_schedule`` draws exponential gaps, matching the §3.4 passive
traces where independent clients superpose into a Poisson stream.  Qname
popularity is Zipfian; the sampler lives in :mod:`repro.workload.zipf`
(shared with the popularity tracker in :mod:`repro.predict`) and is
re-exported here unchanged.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.workload.zipf import ZipfSampler, qnames_for_ranks

__all__ = [
    "fixed_schedule",
    "poisson_schedule",
    "ZipfSampler",
    "qnames_for_ranks",
]


def fixed_schedule(rate_qps: float, duration_s: float) -> Iterator[float]:
    """Evenly spaced send times in ``[0, duration_s)``."""
    if rate_qps <= 0:
        raise ValueError(f"rate must be positive, not {rate_qps}")
    if duration_s < 0:
        raise ValueError(f"duration cannot be negative ({duration_s})")
    interval = 1.0 / rate_qps
    count = int(duration_s * rate_qps)
    return (index * interval for index in range(count))


def poisson_schedule(
    rate_qps: float, duration_s: float, rng: random.Random
) -> Iterator[float]:
    """Poisson arrivals at ``rate_qps`` over ``[0, duration_s)``."""
    if rate_qps <= 0:
        raise ValueError(f"rate must be positive, not {rate_qps}")

    def generate() -> Iterator[float]:
        at = 0.0
        while True:
            at += rng.expovariate(rate_qps)
            if at >= duration_s:
                return
            yield at

    return generate()
