"""Load-generation results: achieved rate, loss, latency percentiles.

The report reuses :func:`repro.analysis.latencystats.latency_summary`
(the paper's Figure 10 machinery) so the live numbers are computed by
exactly the same percentile code as the simulated ones, and can land in
a :class:`MetricsRegistry` for the standard snapshot export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.latencystats import LatencySummary, latency_summary
from repro.dns.message import Rcode
from repro.metrics import HOST, MetricsRegistry, log_buckets

#: Same spacing as the server's serve.latency_ms so the two line up.
LOADGEN_LATENCY_BUCKETS_MS = log_buckets(0.01, 10_000.0, per_decade=4)


@dataclass
class LoadReport:
    """What one load-generation run achieved."""

    mode: str
    offered_qps: float
    achieved_qps: float
    wall_s: float
    sent: int
    received: int
    lost: int
    attempts: int
    parse_errors: int
    rcodes: dict[int, int] = field(default_factory=dict)
    latency: Optional[LatencySummary] = None
    latencies_ms: list[float] = field(default_factory=list)

    @classmethod
    def from_outcomes(
        cls,
        mode: str,
        offered_qps: float,
        wall_s: float,
        latencies_ms: list[float],
        lost: int,
        attempts: int,
        rcodes: dict[int, int],
        parse_errors: int,
    ) -> "LoadReport":
        received = len(latencies_ms)
        sent = received + lost
        return cls(
            mode=mode,
            offered_qps=offered_qps,
            achieved_qps=sent / wall_s if wall_s > 0 else 0.0,
            wall_s=wall_s,
            sent=sent,
            received=received,
            lost=lost,
            attempts=attempts,
            parse_errors=parse_errors,
            rcodes=dict(rcodes),
            latency=latency_summary(latencies_ms),
            latencies_ms=latencies_ms,
        )

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    def to_metrics(self, registry: MetricsRegistry) -> None:
        """Record this run into ``registry`` (HOST domain)."""
        registry.counter("loadgen.sent", domain=HOST).inc(self.sent)
        registry.counter("loadgen.received", domain=HOST).inc(self.received)
        registry.counter("loadgen.lost", domain=HOST).inc(self.lost)
        registry.counter("loadgen.attempts", domain=HOST).inc(self.attempts)
        registry.counter("loadgen.parse_errors", domain=HOST).inc(self.parse_errors)
        registry.gauge("loadgen.achieved_qps", domain=HOST).record(self.achieved_qps)
        rcode_counter = registry.labeled_counter("loadgen.rcode", domain=HOST)
        for rcode, count in sorted(self.rcodes.items()):
            rcode_counter.inc(_rcode_name(rcode), count)
        histogram = registry.histogram(
            "loadgen.latency_ms", LOADGEN_LATENCY_BUCKETS_MS, domain=HOST
        )
        for value in self.latencies_ms:
            histogram.observe(value)

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"mode {self.mode}: offered {self.offered_qps:.0f} qps, "
            f"achieved {self.achieved_qps:.1f} qps over {self.wall_s:.2f} s",
            f"sent {self.sent}  received {self.received}  "
            f"lost {self.lost} ({self.loss_rate:.2%})  "
            f"attempts {self.attempts}  parse errors {self.parse_errors}",
        ]
        if self.rcodes:
            counts = "  ".join(
                f"{_rcode_name(rcode)}={count}"
                for rcode, count in sorted(self.rcodes.items())
            )
            lines.append(f"rcodes: {counts}")
        if self.latency is not None:
            lat = self.latency
            lines.append(
                f"latency ms: p50 {lat.median:.3f}  p95 {lat.p95:.3f}  "
                f"p99 {lat.p99:.3f}  mean {lat.mean:.3f}"
            )
        return "\n".join(lines)


def _rcode_name(value: int) -> str:
    try:
        return Rcode(value).name
    except ValueError:
        return f"RCODE{value}"
