"""repro.loadgen — an open-loop wire-level DNS load generator.

`repro loadgen` fires real UDP queries at a live server (normally
`repro serve`) with Poisson or fixed-rate arrivals and Zipf-distributed
qname popularity, retries on the resolver's own backoff ladder, and
reports achieved qps, loss, and latency percentiles.  See
``docs/serving.md``.
"""

from repro.loadgen.arrivals import (
    ZipfSampler,
    fixed_schedule,
    poisson_schedule,
    qnames_for_ranks,
)
from repro.loadgen.client import LoadGenerator, LoadgenConfig, run_loadgen
from repro.loadgen.report import LoadReport

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "LoadgenConfig",
    "ZipfSampler",
    "fixed_schedule",
    "poisson_schedule",
    "qnames_for_ranks",
    "run_loadgen",
]
