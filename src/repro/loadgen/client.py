"""The wire-level UDP load generator.

Open-loop by default: send times come from a precomputed schedule and do
not wait for responses, so an overloaded server faces the arrival rate
it would face from real, mutually oblivious clients (closed-loop
generators flatter a slow server by self-throttling — kept here only as
a baseline mode).  Each in-flight query is matched to its response by
DNS message ID; timeouts and retransmissions follow the same
:class:`BackoffPolicy` the simulated resolvers use.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.message import Message
from repro.dns.rdtypes import RdataType
from repro.dns.wire import WireError
from repro.loadgen.arrivals import ZipfSampler, fixed_schedule, poisson_schedule
from repro.loadgen.report import LoadReport
from repro.net.transport import BackoffPolicy

#: DNS message IDs are 16-bit; the generator never has more outstanding.
_ID_SPACE = 0x10000


@dataclass
class LoadgenConfig:
    """One load-generation run against a live server."""

    host: str = "127.0.0.1"
    port: int = 53
    rate_qps: float = 100.0
    duration_s: float = 5.0
    #: ``open`` (scheduled arrivals) or ``closed`` (fixed concurrency).
    mode: str = "open"
    #: ``poisson`` or ``fixed`` inter-arrival gaps (open-loop only).
    arrivals: str = "poisson"
    #: Closed-loop only: how many queries are kept in flight.
    concurrency: int = 8
    #: Zipf popularity over this many distinct names.
    population: int = 500
    zipf_exponent: float = 1.0
    qname_template: str = "www.domain{}.nl."
    qtype: RdataType = RdataType.A
    seed: int = 0
    timeout_s: float = 2.0
    retries: int = 2
    use_edns: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be open or closed, not {self.mode!r}")
        if self.arrivals not in ("poisson", "fixed"):
            raise ValueError(f"arrivals must be poisson or fixed, not {self.arrivals!r}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, not {self.concurrency}")

    def backoff(self) -> BackoffPolicy:
        return BackoffPolicy(timeout=self.timeout_s, retries=self.retries)


class _LoadgenProtocol(asyncio.DatagramProtocol):
    """Matches responses to waiters by DNS message ID."""

    def __init__(self) -> None:
        self.waiters: dict[int, asyncio.Future] = {}
        self.malformed = 0
        self.unmatched = 0

    def datagram_received(self, data: bytes, addr) -> None:
        if len(data) < 12:
            self.malformed += 1
            return
        message_id = (data[0] << 8) | data[1]
        future = self.waiters.pop(message_id, None)
        if future is None:
            self.unmatched += 1  # a late retransmit's answer; fine
            return
        if not future.done():
            future.set_result(data)

    def error_received(self, exc: Exception) -> None:  # ICMP errors
        pass


@dataclass
class _Outcome:
    """What one query attempt-chain produced."""

    latency_ms: Optional[float]  # None = lost after all retries
    attempts: int
    rcode: Optional[int] = None
    parse_error: bool = False


class LoadGenerator:
    """Drives one :class:`LoadgenConfig` run and produces a report."""

    def __init__(self, config: LoadgenConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.sampler = ZipfSampler(config.population, config.zipf_exponent)
        self._next_id = self.rng.randrange(_ID_SPACE)
        self._protocol: Optional[_LoadgenProtocol] = None
        self._transport: Optional[asyncio.DatagramTransport] = None

    # -- wire helpers ------------------------------------------------------
    def _take_id(self) -> int:
        assert self._protocol is not None
        for _ in range(_ID_SPACE):
            candidate = self._next_id
            self._next_id = (self._next_id + 1) % _ID_SPACE
            if candidate not in self._protocol.waiters:
                return candidate
        raise RuntimeError("all 65536 message IDs are in flight")

    def _build_query(self, message_id: int) -> bytes:
        rank = self.sampler.rank(self.rng)
        query = Message.make_query(
            self.config.qname_template.format(rank), self.config.qtype, id=message_id
        )
        if self.config.use_edns:
            query.use_edns()
        return query.to_wire()

    async def _query_once(self, backoff: BackoffPolicy) -> _Outcome:
        """Send one query, retrying per the backoff ladder."""
        assert self._protocol is not None and self._transport is not None
        message_id = self._take_id()
        wire = self._build_query(message_id)
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        for attempt in range(backoff.retries + 1):
            future: asyncio.Future = loop.create_future()
            self._protocol.waiters[message_id] = future
            self._transport.sendto(wire)
            wait = backoff.attempt_wait(attempt, self.rng)
            try:
                data = await asyncio.wait_for(future, timeout=wait)
            except asyncio.TimeoutError:
                self._protocol.waiters.pop(message_id, None)
                continue
            latency_ms = (time.monotonic() - started) * 1000.0
            try:
                response = Message.from_wire(data)
            except (WireError, ValueError):
                return _Outcome(latency_ms, attempt + 1, parse_error=True)
            return _Outcome(latency_ms, attempt + 1, rcode=int(response.rcode))
        return _Outcome(None, backoff.retries + 1)

    # -- run modes ---------------------------------------------------------
    async def run(self) -> LoadReport:
        """Execute the configured run against the live server."""
        config = self.config
        loop = asyncio.get_running_loop()
        self._protocol = _LoadgenProtocol()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: self._protocol, remote_addr=(config.host, config.port)
        )
        backoff = config.backoff()
        started = time.monotonic()
        try:
            if config.mode == "open":
                outcomes = await self._run_open(backoff)
            else:
                outcomes = await self._run_closed(backoff)
        finally:
            self._transport.close()
        wall_s = time.monotonic() - started
        rcodes: dict[int, int] = {}
        for outcome in outcomes:
            if outcome.rcode is not None:
                rcodes[outcome.rcode] = rcodes.get(outcome.rcode, 0) + 1
        return LoadReport.from_outcomes(
            mode=config.mode,
            offered_qps=config.rate_qps,
            wall_s=wall_s,
            latencies_ms=[o.latency_ms for o in outcomes if o.latency_ms is not None],
            lost=sum(1 for o in outcomes if o.latency_ms is None),
            attempts=sum(o.attempts for o in outcomes),
            rcodes=rcodes,
            parse_errors=sum(1 for o in outcomes if o.parse_error)
            + self._protocol.malformed,
        )

    async def _run_open(self, backoff: BackoffPolicy) -> list[_Outcome]:
        config = self.config
        if config.arrivals == "poisson":
            schedule = poisson_schedule(config.rate_qps, config.duration_s, self.rng)
        else:
            schedule = fixed_schedule(config.rate_qps, config.duration_s)
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        tasks = []
        for send_at in schedule:
            delay = epoch + send_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(self._query_once(backoff)))
        return list(await asyncio.gather(*tasks))

    async def _run_closed(self, backoff: BackoffPolicy) -> list[_Outcome]:
        """Baseline mode: ``concurrency`` workers, each waiting its turn."""
        config = self.config
        deadline = asyncio.get_running_loop().time() + config.duration_s
        outcomes: list[_Outcome] = []

        async def worker() -> None:
            while asyncio.get_running_loop().time() < deadline:
                outcomes.append(await self._query_once(backoff))

        await asyncio.gather(*(worker() for _ in range(config.concurrency)))
        return outcomes


def run_loadgen(config: LoadgenConfig) -> LoadReport:
    """Synchronous entry point for the CLI and benches."""
    return asyncio.run(LoadGenerator(config).run())
