"""The wire-level UDP load generator.

Open-loop by default: send times come from a precomputed schedule and do
not wait for responses, so an overloaded server faces the arrival rate
it would face from real, mutually oblivious clients (closed-loop
generators flatter a slow server by self-throttling — kept here only as
a baseline mode).  Each in-flight query is matched to its response by
DNS message ID; timeouts and retransmissions follow the same
:class:`BackoffPolicy` the simulated resolvers use.

Driving a *batched* server hard needs the generator itself to be cheap
and to look like many clients, so the hot path here mirrors the server's
tricks: query wires are encoded once per qname rank and re-stamped with
a fresh ID per send; ``parse_responses=False`` reads the rcode straight
from the header instead of running the full decoder; and ``sockets=N``
spreads queries over N source sockets — one connected UDP socket is one
SO_REUSEPORT flow, so a single-socket generator can only ever exercise
one worker no matter how many are listening.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.dns.message import Message
from repro.dns.rdtypes import RdataType
from repro.dns.wire import WireError
from repro.loadgen.arrivals import ZipfSampler, fixed_schedule, poisson_schedule
from repro.loadgen.report import LoadReport
from repro.net.transport import BackoffPolicy

#: DNS message IDs are 16-bit; one socket never has more outstanding.
_ID_SPACE = 0x10000


@dataclass
class LoadgenConfig:
    """One load-generation run against a live server."""

    host: str = "127.0.0.1"
    port: int = 53
    rate_qps: float = 100.0
    duration_s: float = 5.0
    #: ``open`` (scheduled arrivals) or ``closed`` (fixed concurrency).
    mode: str = "open"
    #: ``poisson`` or ``fixed`` inter-arrival gaps (open-loop only).
    arrivals: str = "poisson"
    #: Closed-loop only: how many queries are kept in flight.
    concurrency: int = 8
    #: Zipf popularity over this many distinct names.
    population: int = 500
    zipf_exponent: float = 1.0
    qname_template: str = "www.domain{}.nl."
    qtype: RdataType = RdataType.A
    seed: int = 0
    timeout_s: float = 2.0
    retries: int = 2
    use_edns: bool = True
    #: UDP source sockets to spread queries over (round-robin).  Each
    #: connected socket is one kernel flow, so SO_REUSEPORT servers need
    #: several to see traffic on more than one worker.
    sockets: int = 1
    #: Closed-loop only: stop after exactly this many queries instead of
    #: after ``duration_s``.  With ``concurrency=1`` the query sequence
    #: is fully deterministic — the byte-identity checks depend on that.
    count: Optional[int] = None
    #: False skips the response decoder: the rcode comes straight from
    #: header byte 3.  The throughput benches use this so the generator
    #: is never the bottleneck being measured.
    parse_responses: bool = True
    #: Write one line per answered query — sha256 of the response bytes
    #: with the ID zeroed — in arrival order.  ``cmp`` between two runs
    #: proves the answer bytes match.
    dump_responses: Optional[str] = None
    #: Attach an RFC 7871 ECS option sampling this many distinct client
    #: /24s (0 = no ECS).  Each query carries one subnet drawn uniformly,
    #: so a `repro serve --ecs` target sees a subnet-diverse client mix.
    ecs_subnets: int = 0

    def __post_init__(self) -> None:
        if self.ecs_subnets < 0:
            raise ValueError(f"ecs_subnets must be >= 0, not {self.ecs_subnets}")
        if self.ecs_subnets > 4096:
            raise ValueError(
                f"ecs_subnets {self.ecs_subnets} exceeds the 4096 /24s in 172.16/12"
            )
        if self.ecs_subnets and not self.use_edns:
            raise ValueError("ECS rides in the OPT record; drop --no-edns")
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be open or closed, not {self.mode!r}")
        if self.arrivals not in ("poisson", "fixed"):
            raise ValueError(f"arrivals must be poisson or fixed, not {self.arrivals!r}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, not {self.concurrency}")
        if self.sockets < 1:
            raise ValueError(f"need at least one socket, not {self.sockets}")
        if self.count is not None:
            if self.count < 1:
                raise ValueError(f"count must be >= 1, not {self.count}")
            if self.mode != "closed":
                raise ValueError("count runs are closed-loop; use mode='closed'")

    def backoff(self) -> BackoffPolicy:
        return BackoffPolicy(timeout=self.timeout_s, retries=self.retries)


class _LoadgenProtocol(asyncio.DatagramProtocol):
    """Matches responses to waiters by DNS message ID (one per socket)."""

    def __init__(self) -> None:
        self.waiters: dict[int, asyncio.Future] = {}
        self.malformed = 0
        self.unmatched = 0

    def datagram_received(self, data: bytes, addr) -> None:
        if len(data) < 12:
            self.malformed += 1
            return
        message_id = (data[0] << 8) | data[1]
        future = self.waiters.pop(message_id, None)
        if future is None:
            self.unmatched += 1  # a late retransmit's answer; fine
            return
        if not future.done():
            future.set_result(data)

    def error_received(self, exc: Exception) -> None:  # ICMP errors
        pass


@dataclass
class _Endpoint:
    """One source socket: its transport, waiter table, and ID cursor."""

    protocol: _LoadgenProtocol
    transport: asyncio.DatagramTransport
    next_id: int = 0

    def take_id(self) -> int:
        waiters = self.protocol.waiters
        for _ in range(_ID_SPACE):
            candidate = self.next_id
            self.next_id = (self.next_id + 1) % _ID_SPACE
            if candidate not in waiters:
                return candidate
        raise RuntimeError("all 65536 message IDs are in flight on one socket")


@dataclass
class _Outcome:
    """What one query attempt-chain produced."""

    latency_ms: Optional[float]  # None = lost after all retries
    attempts: int
    rcode: Optional[int] = None
    parse_error: bool = False


class LoadGenerator:
    """Drives one :class:`LoadgenConfig` run and produces a report."""

    def __init__(self, config: LoadgenConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.sampler = ZipfSampler(config.population, config.zipf_exponent)
        self._endpoints: list[_Endpoint] = []
        self._round_robin = 0
        #: Encode-once query wires by (qname rank, ECS subnet index — -1
        #: when ECS is off), ID zeroed; sends stamp a fresh ID over the
        #: first two octets.
        self._wire_cache: dict[tuple[int, int], bytes] = {}
        self._digests: Optional[list[str]] = [] if config.dump_responses else None

    # -- wire helpers ------------------------------------------------------
    def _query_wire(self, rank: int, message_id: int, subnet: int = -1) -> bytes:
        key = (rank, subnet)
        base = self._wire_cache.get(key)
        if base is None:
            query = Message.make_query(
                self.config.qname_template.format(rank), self.config.qtype, id=0
            )
            if self.config.use_edns:
                if subnet >= 0:
                    from repro.dns.ecs import ClientSubnet

                    network = f"172.{16 + (subnet >> 8)}.{subnet & 255}.0"
                    query.use_edns(
                        options=ClientSubnet.from_ip(network, 24).to_wire()
                    )
                else:
                    query.use_edns()
            base = query.to_wire()
            self._wire_cache[key] = base
        return message_id.to_bytes(2, "big") + base[2:]

    async def _query_once(self, backoff: BackoffPolicy) -> _Outcome:
        """Send one query, retrying per the backoff ladder."""
        endpoint = self._endpoints[self._round_robin % len(self._endpoints)]
        self._round_robin += 1
        message_id = endpoint.take_id()
        rank = self.sampler.rank(self.rng)
        subnet = (
            self.rng.randrange(self.config.ecs_subnets)
            if self.config.ecs_subnets
            else -1
        )
        wire = self._query_wire(rank, message_id, subnet)
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        for attempt in range(backoff.retries + 1):
            future: asyncio.Future = loop.create_future()
            endpoint.protocol.waiters[message_id] = future
            endpoint.transport.sendto(wire)
            wait = backoff.attempt_wait(attempt, self.rng)
            try:
                data = await asyncio.wait_for(future, timeout=wait)
            except asyncio.TimeoutError:
                endpoint.protocol.waiters.pop(message_id, None)
                continue
            latency_ms = (time.monotonic() - started) * 1000.0
            if self._digests is not None:
                self._digests.append(
                    hashlib.sha256(b"\x00\x00" + data[2:]).hexdigest()
                )
            if not self.config.parse_responses:
                # Header-only read: rcode is the low nibble of byte 3.
                # The protocol already rejected anything under 12 octets.
                return _Outcome(latency_ms, attempt + 1, rcode=data[3] & 0x0F)
            try:
                response = Message.from_wire(data)
            except (WireError, ValueError):
                return _Outcome(latency_ms, attempt + 1, parse_error=True)
            return _Outcome(latency_ms, attempt + 1, rcode=int(response.rcode))
        return _Outcome(None, backoff.retries + 1)

    # -- run modes ---------------------------------------------------------
    async def run(self) -> LoadReport:
        """Execute the configured run against the live server."""
        config = self.config
        loop = asyncio.get_running_loop()
        for _ in range(config.sockets):
            protocol = _LoadgenProtocol()
            transport, _ = await loop.create_datagram_endpoint(
                lambda protocol=protocol: protocol,
                remote_addr=(config.host, config.port),
            )
            self._endpoints.append(
                _Endpoint(protocol, transport, next_id=self.rng.randrange(_ID_SPACE))
            )
        backoff = config.backoff()
        started = time.monotonic()
        try:
            if config.mode == "open":
                outcomes = await self._run_open(backoff)
            else:
                outcomes = await self._run_closed(backoff)
        finally:
            for endpoint in self._endpoints:
                endpoint.transport.close()
        wall_s = time.monotonic() - started
        if self._digests is not None:
            assert config.dump_responses is not None
            with open(config.dump_responses, "w", encoding="utf-8") as stream:
                stream.writelines(digest + "\n" for digest in self._digests)
        rcodes: dict[int, int] = {}
        for outcome in outcomes:
            if outcome.rcode is not None:
                rcodes[outcome.rcode] = rcodes.get(outcome.rcode, 0) + 1
        return LoadReport.from_outcomes(
            mode=config.mode,
            offered_qps=config.rate_qps,
            wall_s=wall_s,
            latencies_ms=[o.latency_ms for o in outcomes if o.latency_ms is not None],
            lost=sum(1 for o in outcomes if o.latency_ms is None),
            attempts=sum(o.attempts for o in outcomes),
            rcodes=rcodes,
            parse_errors=sum(1 for o in outcomes if o.parse_error)
            + sum(endpoint.protocol.malformed for endpoint in self._endpoints),
        )

    async def _run_open(self, backoff: BackoffPolicy) -> list[_Outcome]:
        config = self.config
        if config.arrivals == "poisson":
            schedule = poisson_schedule(config.rate_qps, config.duration_s, self.rng)
        else:
            schedule = fixed_schedule(config.rate_qps, config.duration_s)
        loop = asyncio.get_running_loop()
        epoch = loop.time()
        tasks = []
        for send_at in schedule:
            delay = epoch + send_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(self._query_once(backoff)))
        return list(await asyncio.gather(*tasks))

    async def _run_closed(self, backoff: BackoffPolicy) -> list[_Outcome]:
        """Baseline mode: ``concurrency`` workers, each waiting its turn.

        A ``count`` budget takes precedence over the wall-clock deadline;
        with one worker the resulting query sequence (and so the server's
        querylog and the response digests) is deterministic.
        """
        config = self.config
        outcomes: list[_Outcome] = []

        if config.count is not None:
            remaining = config.count

            async def counted_worker() -> None:
                nonlocal remaining
                while remaining > 0:
                    remaining -= 1
                    outcomes.append(await self._query_once(backoff))

            await asyncio.gather(
                *(counted_worker() for _ in range(config.concurrency))
            )
            return outcomes

        deadline = asyncio.get_running_loop().time() + config.duration_s

        async def worker() -> None:
            while asyncio.get_running_loop().time() < deadline:
                outcomes.append(await self._query_once(backoff))

        await asyncio.gather(*(worker() for _ in range(config.concurrency)))
        return outcomes


def run_loadgen(config: LoadgenConfig) -> LoadReport:
    """Synchronous entry point for the CLI and benches."""
    return asyncio.run(LoadGenerator(config).run())
