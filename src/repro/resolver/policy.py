"""Resolver policy knobs.

Each knob corresponds to a behaviour the paper observes in the wild; a
:class:`ResolverPolicy` bundles one resolver's choices.  The named
constructors build the archetypes used by the population generator:

- :meth:`ResolverPolicy.child_centric` — the RFC 2181 §5.4.1 majority
  behaviour (~90 % of .uy answers, §3.2),
- :meth:`ResolverPolicy.parent_centric` — trusts referral glue as answers
  and pins it for the parent's TTL (OpenDNS-like, §3.2/§4.4),
- :meth:`ResolverPolicy.capping` — child-centric with a TTL ceiling
  (Google Public DNS's 21599 s cap, §3.3),
- :meth:`ResolverPolicy.sticky` — keeps using the first servers it learned
  even past TTL expiry (§4.2's "sticky resolvers", ~2.25 %),
- :meth:`ResolverPolicy.local_root` — RFC 7706: serves the root zone from a
  local copy, so root-zone data (TLD NS and glue) always carries the
  parent's TTL and no root queries leave the resolver.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.predict.policy import PredictPolicy
from repro.push.policy import PushPolicy


@dataclass(frozen=True)
class EcsPolicy:
    """RFC 7871 EDNS Client Subnet behaviour for one resolver.

    A resolver with ECS armed truncates the client's address to
    ``source_prefix_v4``/``source_prefix_v6`` bits (the privacy-motivated
    defaults large public resolvers use), attaches it to upstream queries
    for whitelisted domains, and caches non-zero-scope answers in the
    subnet-scoped overlay.  ``whitelist`` is a tuple of domain suffixes
    (``None`` = send ECS for every domain), mirroring the opt-in lists
    public resolvers maintain for CDN operators.
    """

    source_prefix_v4: int = 24
    source_prefix_v6: int = 56
    whitelist: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not 0 < self.source_prefix_v4 <= 32:
            raise ValueError(
                f"source_prefix_v4 {self.source_prefix_v4} outside 1..32"
            )
        if not 0 < self.source_prefix_v6 <= 128:
            raise ValueError(
                f"source_prefix_v6 {self.source_prefix_v6} outside 1..128"
            )

    def source_prefix(self, family: int) -> int:
        return self.source_prefix_v4 if family == 1 else self.source_prefix_v6

    def allows(self, qname: object) -> bool:
        """Whether ``qname`` (a :class:`~repro.dns.name.Name`) gets ECS."""
        if self.whitelist is None:
            return True
        text = str(qname).rstrip(".").lower()
        for suffix in self.whitelist:
            suffix = suffix.rstrip(".").lower()
            if text == suffix or text.endswith("." + suffix):
                return True
        return False

    def describe(self) -> str:
        scope = f"ecs/{self.source_prefix_v4}"
        if self.whitelist is not None:
            scope += f"+wl{len(self.whitelist)}"
        return scope


class Centricity(enum.Enum):
    """Which side of a delegation the resolver believes (paper §3)."""

    CHILD = "child"
    PARENT = "parent"


class ServerSelection(enum.Enum):
    """How a resolver picks among a zone's authoritative servers.

    The paper cites prior work showing "resolvers tend to rotate between
    authoritative servers" (§3.4, [37]).
    """

    ROTATE = "rotate"
    RANDOM = "random"
    FIRST = "first"


@dataclass(frozen=True)
class ResolverPolicy:
    """One resolver's caching and iteration behaviour."""

    #: Parent- or child-centric TTL preference (§3).
    centricity: Centricity = Centricity.CHILD
    #: Cap applied to every cached TTL (Google-like 21599 s), or None.
    ttl_cap: Optional[int] = None
    #: Floor applied to every cached TTL ("tens of seconds" in §6.1).
    ttl_floor: int = 0
    #: Serve expired answers when all authoritatives are unreachable
    #: (draft-ietf-dnsop-serve-stale, §3.1).
    serve_stale: bool = False
    #: RFC 7706 / LocalRoot: a local copy of the root zone (§3.1).
    rfc7706_local_root: bool = False
    #: Tie in-bailiwick glue addresses to their covering NS set (§4.2's
    #: majority behaviour); out-of-bailiwick addresses always live their
    #: full TTL regardless of this flag.
    link_inbailiwick_glue: bool = True
    #: Sticky: refresh cached server addresses on expiry instead of
    #: re-fetching, so the resolver never notices renumbering (§4.2).
    sticky: bool = False
    #: How to pick among NS targets.
    server_selection: ServerSelection = ServerSelection.ROTATE
    #: Answer client NS queries from referral-credibility cache data
    #: (parent-centric resolvers do; child-centric ones re-query the child).
    answer_from_referral: bool = False
    #: Fetch a server's address from the child zone when only glue is
    #: cached (DNSSEC-validating / target-fetching resolvers).  These
    #: explicit A queries for NS names at the child's own servers are what
    #: the paper's §3.4 passive study observes at the .nl authoritatives.
    target_fetch: bool = True
    #: DNSSEC validation (TTL enclosure only): clamp cached TTLs to the
    #: RRSIG's original_ttl (RFC 4035 §5.3.3) — the paper's §2 argument
    #: for why validating resolvers are child-centric for TTLs.
    validate_dnssec: bool = False
    #: Unbound-style prefetch (the Pappas et al. renewal strategy the
    #: paper's §7 cites): refresh popular records out-of-band when a hit
    #: lands in the last tenth of their lifetime, hiding the miss latency.
    prefetch: bool = False
    #: Fraction of lifetime remaining below which prefetch triggers.
    prefetch_window: float = 0.1
    #: Predictive caching (repro.predict): popularity-driven refresh-ahead
    #: and RFC 8767 stale-while-revalidate.  ``None`` disables all of it.
    predict: Optional[PredictPolicy] = None
    #: RFC 7871 EDNS Client Subnet: attach truncated client prefixes to
    #: upstream queries and cache scoped answers per subnet.  ``None``
    #: (the default) leaves every code path byte-identical to a build
    #: without ECS.
    ecs: Optional[EcsPolicy] = None
    #: Push subscriptions (repro.push): subscribe to resolved records at
    #: push-capable authoritatives and accept NOTIFY updates in place.
    #: ``None`` (the default) leaves every code path byte-identical to a
    #: build without push.
    push: Optional[PushPolicy] = None

    def __post_init__(self) -> None:
        if self.ttl_cap is not None and self.ttl_cap < self.ttl_floor:
            raise ValueError(
                f"ttl_cap {self.ttl_cap} below ttl_floor {self.ttl_floor}"
            )

    # -- archetypes ---------------------------------------------------------
    @classmethod
    def child_centric(cls) -> "ResolverPolicy":
        """The default, standards-following resolver."""
        return cls()

    @classmethod
    def parent_centric(cls) -> "ResolverPolicy":
        """Trusts and pins parent-side data (OpenDNS-like)."""
        return cls(
            centricity=Centricity.PARENT,
            answer_from_referral=True,
            target_fetch=False,
        )

    @classmethod
    def capping(cls, cap: int = 21599) -> "ResolverPolicy":
        """Child-centric with a TTL ceiling (Google Public DNS-like)."""
        return cls(ttl_cap=cap)

    @classmethod
    def sticky_resolver(cls) -> "ResolverPolicy":
        """Never lets go of the servers it first learned."""
        return cls(sticky=True, target_fetch=False)

    @classmethod
    def local_root(cls) -> "ResolverPolicy":
        """RFC 7706: root zone mirrored locally (parent-centric for TLDs)."""
        return cls(
            centricity=Centricity.PARENT,
            rfc7706_local_root=True,
            answer_from_referral=True,
            target_fetch=False,
        )

    @classmethod
    def unlinked(cls) -> "ResolverPolicy":
        """Child-centric but trusts in-bailiwick A records independently of
        their NS set — the minority behaviour in Figure 6 that keeps using
        the old server between 60 and 120 minutes."""
        return cls(link_inbailiwick_glue=False)

    def with_(self, **overrides: object) -> "ResolverPolicy":
        """A copy with fields replaced (dataclasses.replace shorthand)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def describe(self) -> str:
        """Short label used in experiment outputs."""
        parts = [self.centricity.value]
        if self.ttl_cap is not None:
            parts.append(f"cap{self.ttl_cap}")
        if self.ttl_floor:
            parts.append(f"floor{self.ttl_floor}")
        if self.sticky:
            parts.append("sticky")
        if self.rfc7706_local_root:
            parts.append("rfc7706")
        if self.serve_stale:
            parts.append("serve-stale")
        if not self.link_inbailiwick_glue:
            parts.append("unlinked")
        if self.validate_dnssec:
            parts.append("validating")
        if self.prefetch:
            parts.append("prefetch")
        if self.predict is not None:
            parts.append(self.predict.describe())
        if self.ecs is not None:
            parts.append(self.ecs.describe())
        if self.push is not None:
            parts.append(self.push.describe())
        return "+".join(parts)

    @classmethod
    def validating(cls) -> "ResolverPolicy":
        """A DNSSEC-validating resolver: child-centric with signed-TTL
        clamping and target fetching (it must query the child)."""
        return cls(validate_dnssec=True)

    @classmethod
    def prefetching(cls) -> "ResolverPolicy":
        """Child-centric with Unbound-style prefetch."""
        return cls(prefetch=True)

    @classmethod
    def predictive(cls, predict: Optional[PredictPolicy] = None) -> "ResolverPolicy":
        """Child-centric with the full repro.predict stack: popularity
        tracking, budgeted refresh-ahead, and RFC 8767 serve-stale."""
        return cls(predict=predict if predict is not None else PredictPolicy())

    @classmethod
    def pushing(cls, push: Optional[PushPolicy] = None) -> "ResolverPolicy":
        """Child-centric with push subscriptions (repro.push): records
        resolved at push-capable authoritatives are subscribed to and
        updated in place on NOTIFY instead of re-polled on TTL expiry."""
        return cls(push=push if push is not None else PushPolicy())
