"""The stub resolver: what a client (or Atlas probe) talks to.

A stub forwards queries to one recursive resolver and accounts the
client-to-resolver leg of latency: an on-network resolver (same AS) is a
few milliseconds away, a public resolver (OpenDNS/Google-like, different
AS) is a real network hop.  The total RTT a stub reports is exactly what a
RIPE Atlas DNS measurement records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.dns.record import RRset
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint
from repro.resolver.recursive import RecursiveResolver


@dataclass
class StubAnswer:
    """One client-visible answer with its end-to-end round trip time."""

    rcode: Rcode
    answers: list[RRset] = field(default_factory=list)
    rtt: float = 0.0
    cache_hit: bool = False
    served_stale: bool = False
    resolver_address: str = ""

    @property
    def answer_rrset(self) -> Optional[RRset]:
        return self.answers[-1] if self.answers else None

    def ttl(self) -> Optional[int]:
        """TTL of the final answer — the value the paper's CDFs plot."""
        rrset = self.answer_rrset
        return rrset.ttl if rrset is not None else None


class StubResolver:
    """A client-side stub bound to one upstream recursive resolver."""

    def __init__(
        self,
        endpoint: Endpoint,
        resolver: RecursiveResolver,
        latency: LatencyModel,
        seed: int = 0,
    ) -> None:
        self.endpoint = endpoint
        self.resolver = resolver
        self._latency = latency
        self._rng = random.Random(seed ^ 0x57AB)

    def __repr__(self) -> str:
        return f"StubResolver({self.endpoint.address} -> {self.resolver.address})"

    def client_leg_rtt(self) -> float:
        """Client → recursive resolver round trip, in seconds."""
        if self.endpoint.asn == self.resolver.endpoint.asn:
            return self._latency.last_mile_rtt(self._rng)
        return self._latency.rtt(self.endpoint, self.resolver.endpoint, self._rng)

    def query(self, qname: Name | str, qtype: RdataType, now: float) -> StubAnswer:
        """Send one query and measure the full round trip."""
        leg = self.client_leg_rtt()
        result = self.resolver.resolve(qname, qtype, now + leg / 2.0)
        return StubAnswer(
            rcode=result.rcode,
            answers=result.answers,
            rtt=leg + result.elapsed,
            cache_hit=result.cache_hit,
            served_stale=result.served_stale,
            resolver_address=self.resolver.address,
        )
