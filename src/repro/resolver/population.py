"""Resolver populations matching the behaviour mix the paper measured.

The paper never sees a single resolver implementation — it sees the
aggregate of the wild population.  This module builds such populations:
a weighted mix of policy archetypes, a handful of *public* resolver
services (shared by clients across many ASes, like OpenDNS and Google
Public DNS), and the long tail of on-network resolvers.

The default mix is calibrated to the paper's §3 findings:

- ~90 % of .uy answers follow the child TTL → most resolvers child-centric
  (plain or capping);
- ~15 % of google.co answers capped at 21599 s → a Google-like capping
  service with significant client share;
- ~10 % parent-centric (OpenDNS-like public service plus RFC 7706
  operators);
- ~2.25 % sticky (§4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.name import Name
from repro.dns.zone import Zone
from repro.net.topology import Region, Topology
from repro.net.transport import Network
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver


@dataclass(frozen=True)
class PolicyShare:
    """One behaviour archetype and its share of the resolver population."""

    label: str
    policy: ResolverPolicy
    weight: float
    #: Public services are few, shared instances; on-network archetypes are
    #: instantiated once per resolver.
    public: bool = False


def default_mix() -> list[PolicyShare]:
    """The §3-calibrated behaviour mix."""
    return [
        PolicyShare("child", ResolverPolicy.child_centric(), 0.715),
        PolicyShare("capping", ResolverPolicy.capping(21599), 0.15, public=True),
        PolicyShare("parent", ResolverPolicy.parent_centric(), 0.06, public=True),
        PolicyShare("local-root", ResolverPolicy.local_root(), 0.03),
        PolicyShare("sticky", ResolverPolicy.sticky_resolver(), 0.0225),
        PolicyShare("unlinked", ResolverPolicy.unlinked(), 0.0225),
    ]


@dataclass
class PopulationConfig:
    """Parameters for building a resolver population."""

    count: int = 100
    mix: list[PolicyShare] = field(default_factory=default_mix)
    seed: int = 0
    #: How many shared instances each public service runs (anycast-ish
    #: backends; the paper's §4.4 notes public resolvers have many backends
    #: causing cache fragmentation).
    public_backends: int = 4


class ResolverPopulation:
    """A built population: resolvers plus their behaviour labels."""

    def __init__(
        self,
        config: PopulationConfig,
        topology: Topology,
        network: Network,
        root_hints: dict[Name, str],
        root_zone: Optional[Zone] = None,
    ) -> None:
        self.config = config
        self._rng = random.Random(config.seed ^ 0xA0B)
        self.resolvers: list[RecursiveResolver] = []
        self.label_of: dict[str, str] = {}
        self._public_pool: dict[str, list[RecursiveResolver]] = {}

        weights = [share.weight for share in config.mix]
        for index in range(config.count):
            share = self._rng.choices(config.mix, weights=weights, k=1)[0]
            if share.public:
                resolver = self._public_instance(
                    share, topology, network, root_hints, root_zone
                )
            else:
                endpoint = topology.create_endpoint(name=f"resolver-{index}")
                resolver = RecursiveResolver(
                    endpoint=endpoint,
                    network=network,
                    root_hints=root_hints,
                    policy=share.policy,
                    root_zone=root_zone,
                )
            self.resolvers.append(resolver)
            self.label_of[resolver.address] = share.label

    def _public_instance(
        self,
        share: PolicyShare,
        topology: Topology,
        network: Network,
        root_hints: dict[Name, str],
        root_zone: Optional[Zone],
    ) -> RecursiveResolver:
        """A backend of a shared public service (round-robin assignment)."""
        pool = self._public_pool.get(share.label)
        if pool is None:
            pool = []
            for backend in range(self.config.public_backends):
                # Public services run from well-connected European/US hubs.
                region = Region.EU if backend % 2 == 0 else Region.NA
                endpoint = topology.endpoint_in_region(
                    region, name=f"{share.label}-public-{backend}"
                )
                pool.append(
                    RecursiveResolver(
                        endpoint=endpoint,
                        network=network,
                        root_hints=root_hints,
                        policy=share.policy,
                        root_zone=root_zone,
                    )
                )
            self._public_pool[share.label] = pool
        return pool[self._rng.randrange(len(pool))]

    def __len__(self) -> int:
        return len(self.resolvers)

    def unique_resolvers(self) -> list[RecursiveResolver]:
        """Deduplicated instances (public backends appear once)."""
        seen: dict[str, RecursiveResolver] = {}
        for resolver in self.resolvers:
            seen.setdefault(resolver.address, resolver)
        return list(seen.values())

    def labels(self) -> dict[str, int]:
        """How many *unique* resolvers carry each behaviour label."""
        counts: dict[str, int] = {}
        for resolver in self.unique_resolvers():
            label = self.label_of[resolver.address]
            counts[label] = counts.get(label, 0) + 1
        return counts
