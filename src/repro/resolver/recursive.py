"""The iterative resolution engine.

A :class:`RecursiveResolver` serves stub clients from its cache and walks
the delegation tree (root → TLD → ... → leaf) on misses, caching every
section of every response at the appropriate RFC 2181 credibility.  All of
the paper's measured behaviours emerge from the policy knobs:

- *child-centric* resolvers require answer-rank data to respond, so a
  client asking for ``NS .uy`` drives a query to ``.uy``'s own servers and
  sees the child TTL (300 s);
- *parent-centric* resolvers pin referral data and answer from it, so the
  same client sees the root's glue TTL (172800 s) — and they keep using a
  renumbered server's old address because the pinned parent data never
  yields to the child's (§4.4's OpenDNS case);
- *linked* in-bailiwick glue dies with its NS set, so ~90 % of resolvers
  re-fetch a still-valid A record when the covering NS expires (§4.2);
- *sticky* resolvers refresh infrastructure records instead of re-fetching
  and never notice renumbering at all (§4.2's 2.25 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dns.ecs import ClientSubnet, extract_client_subnet
from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name, root
from repro.dns.wire import WireError
from repro.dns.rdtypes import CNAME, NS, RdataClass, RdataType
from repro.dns.record import RRset
from repro.dns.zone import Zone
from repro.net.topology import Endpoint
from repro.net.transport import Network, NetworkTimeout
from repro.predict import PopularityTracker, RefreshScheduler
from repro.resolver.cache import Cache, CacheKey, Credibility
from repro.resolver.policy import Centricity, ResolverPolicy, ServerSelection

#: Hard ceilings that bound any resolution, however broken the zone setup.
MAX_REFERRAL_STEPS = 24
MAX_CNAME_HOPS = 8
MAX_SUBRESOLUTION_DEPTH = 4

#: TTL handed to clients for answers served stale (serve-stale drafts use
#: a small non-zero value so downstreams do not re-query instantly).
STALE_ANSWER_TTL = 30

#: Bound on the refreshed-generation memo behind ``predict.refresh_hits``.
_MAX_REFRESHED_MEMO = 4096

#: Referral-depth histogram buckets: one bucket per step up to the hard
#: ceiling, so shard merges are exact and depth distributions lossless.
_REFERRAL_DEPTH_BUCKETS = tuple(float(step) for step in range(1, MAX_REFERRAL_STEPS + 1))


@dataclass
class ResolutionResult:
    """What the resolver hands back to a stub client."""

    rcode: Rcode
    answers: list[RRset] = field(default_factory=list)
    #: Upstream time spent, in seconds (0.0 for a clean cache hit).
    elapsed: float = 0.0
    cache_hit: bool = False
    served_stale: bool = False
    #: Addresses of authoritative servers contacted, in order.
    servers_contacted: list[str] = field(default_factory=list)
    #: RFC 7871 scope of the answer (None when ECS was not in play,
    #: 0 when the authoritative declared the answer global).
    ecs_scope: Optional[int] = None

    @property
    def answer_rrset(self) -> Optional[RRset]:
        return self.answers[-1] if self.answers else None

    def first_ttl(self) -> Optional[int]:
        """TTL of the final answer RRset — what a measurement VP records."""
        rrset = self.answer_rrset
        return rrset.ttl if rrset is not None else None


class ResolutionError(Exception):
    """Internal signal that iteration failed; converted to SERVFAIL."""

    def __init__(self, message: str, elapsed: float) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class RecursiveResolver:
    """One recursive resolver instance (a cache plus an iteration engine)."""

    def __init__(
        self,
        endpoint: Endpoint,
        network: Network,
        root_hints: dict[Name, str],
        policy: Optional[ResolverPolicy] = None,
        root_zone: Optional[Zone] = None,
    ) -> None:
        """``root_hints`` maps root server names to addresses.

        ``root_zone`` is only consulted when the policy enables RFC 7706:
        the resolver then serves root-zone data from this local copy and
        sends no queries to the root servers.
        """
        if not root_hints:
            raise ValueError("a resolver needs at least one root hint")
        self.endpoint = endpoint
        self.network = network
        self.policy = policy or ResolverPolicy.child_centric()
        self.root_hints = dict(root_hints)
        self.root_zone = root_zone
        self._root_mirror = None
        if self.policy.rfc7706_local_root and root_zone is not None:
            # RFC 7706: the local copy is a *transferred snapshot* that
            # refreshes on the SOA schedule, not a live reference.
            from repro.server.axfr import LocalZoneMirror

            self._root_mirror = LocalZoneMirror(root_zone)
        # The fabric's registry (attached via Network.attach_metrics before
        # resolvers are built) aggregates resolver and cache metrics for
        # the whole world; without one, null metrics keep hot paths cheap.
        metrics = getattr(network, "metrics", None)
        self.cache = Cache(
            max_ttl=self.policy.ttl_cap,
            min_ttl=self.policy.ttl_floor,
            metrics=metrics,
        )
        self._rotation: dict[Name, int] = {}
        self._query_skeletons: dict[tuple[Name, RdataType], Message] = {}
        #: ECS context for the resolution in flight (single-threaded): the
        #: truncated client subnet attached to upstream queries, and the
        #: scope the final answer came back with.  Always ``None`` when
        #: the policy leaves ECS off.
        self._ecs_subnet: Optional[ClientSubnet] = None
        self._ecs_scope: Optional[int] = None
        self.queries_sent = 0
        self.client_queries = 0
        self._last_iteration_steps = 0
        if metrics is not None:
            self._m_client_queries = metrics.counter("resolver.client_queries")
            self._m_upstream = metrics.counter("resolver.upstream_queries")
            self._m_servfail = metrics.counter("resolver.servfail")
            self._m_served_stale = metrics.counter("resolver.served_stale")
            self._m_failovers = metrics.counter("resolver.failovers")
            self._m_restarts = metrics.counter("resolver.restarts")
            self._m_referral_depth = metrics.histogram(
                "resolver.referral_depth", _REFERRAL_DEPTH_BUCKETS
            )
        else:
            from repro.metrics.registry import NULL_COUNTER, NULL_HISTOGRAM

            self._m_client_queries = self._m_upstream = NULL_COUNTER
            self._m_servfail = self._m_served_stale = NULL_COUNTER
            self._m_failovers = self._m_restarts = NULL_COUNTER
            self._m_referral_depth = NULL_HISTOGRAM

        # Predictive caching (repro.predict).  The scheduler also backs
        # plain on-hit prefetch — unbudgeted, matching Unbound — so a
        # prefetch refresh is never charged to the triggering client.
        predict = self.policy.predict
        self._predict = predict
        self._tracker: Optional[PopularityTracker] = None
        self._scheduler: Optional[RefreshScheduler] = None
        #: (qname, qtype) -> generation written by a scheduler refresh;
        #: a client hit on that generation counts as a refresh hit.
        self._refreshed: dict[tuple[Name, RdataType], int] = {}
        if predict is not None:
            self._tracker = PopularityTracker(
                capacity=predict.track_top_k,
                min_hits=predict.min_hits,
                window_s=predict.popularity_window_s,
            )
            self._scheduler = RefreshScheduler(
                self._scheduled_refresh,
                max_refresh_per_s=predict.max_refresh_per_s,
                refresh_burst=predict.refresh_burst,
                failure_backoff_s=predict.failure_backoff_s,
                failure_backoff_cap_s=predict.failure_backoff_cap_s,
                metrics=metrics,
            )
        elif self.policy.prefetch:
            self._scheduler = RefreshScheduler(self._scheduled_refresh, metrics=metrics)
        # Push subscriptions (repro.push): armed policies get a client
        # that subscribes to resolved records at push-capable servers and
        # applies NOTIFY frames on the resolve/pump path.
        self._push = None
        if self.policy.push is not None:
            from repro.push.subscriber import PushClient

            self._push = PushClient(
                endpoint, network, self.cache, self.policy.push
            )
        if self._scheduler is not None and metrics is not None:
            self._m_refresh_hits = metrics.counter("predict.refresh_hits")
            self._m_stale_answered = metrics.counter("predict.stale_answered")
        else:
            from repro.metrics.registry import NULL_COUNTER

            self._m_refresh_hits = self._m_stale_answered = NULL_COUNTER

    def __repr__(self) -> str:
        return f"RecursiveResolver({self.endpoint.address}, {self.policy.describe()})"

    @property
    def address(self) -> str:
        return self.endpoint.address

    # ------------------------------------------------------------------ client API
    def resolve(
        self,
        qname: Name | str,
        qtype: RdataType,
        now: float,
        client_subnet: Optional[ClientSubnet] = None,
    ) -> ResolutionResult:
        """Answer a client query, recursing as needed.

        ``now`` is the virtual time the query arrives; the result's
        ``elapsed`` is the upstream time spent beyond that instant.

        ``client_subnet`` is the querying client's subnet; it is only
        acted on when the policy arms :class:`~repro.resolver.policy.
        EcsPolicy` *and* the domain is whitelisted — the resolver then
        checks the scoped cache overlay first and attaches the truncated
        prefix to upstream queries (RFC 7871).  Scope-0 answers take the
        exact non-ECS path, so an all-global run is byte-identical to one
        that never heard of ECS.
        """
        faults = getattr(self.network, "faults", None)
        if faults is not None and faults.take_restart(self.address, now):
            self.restart()
        if self._scheduler is not None or self._push is not None:
            # Run maintenance *before* answering: due refreshes execute
            # back-dated to their due time, off this client's latency,
            # and delivered NOTIFY frames land before the cache probe.
            self.pump(now)
        self.client_queries += 1
        self._m_client_queries.inc()
        name = Name(qname)
        if self._tracker is not None:
            self._tracker.record((name, qtype), now)

        subnet: Optional[ClientSubnet] = None
        ecs_policy = self.policy.ecs
        if (
            ecs_policy is not None
            and client_subnet is not None
            and ecs_policy.allows(name)
        ):
            subnet = client_subnet.truncate(
                ecs_policy.source_prefix(client_subnet.family)
            )
            if subnet.scope_prefix:
                subnet = subnet.with_scope(0)

        negative = self.cache.get_negative(name, qtype, now)
        if negative is not None:
            rcode = Rcode.NXDOMAIN if negative.nxdomain else Rcode.NOERROR
            return ResolutionResult(rcode=rcode, cache_hit=True)

        if subnet is not None:
            scoped = self.cache.get_scoped(name, qtype, subnet, now)
            if scoped is not None:
                return ResolutionResult(
                    rcode=Rcode.NOERROR,
                    answers=[scoped.aged_rrset(now)],
                    cache_hit=True,
                    ecs_scope=scoped.scope,
                )

        cached = self._answer_from_cache(name, qtype, now)
        if cached is not None:
            if self._refreshed:
                entry = self.cache.peek(name, qtype)
                if (
                    entry is not None
                    and self._refreshed.get((name, qtype)) == entry.generation
                ):
                    self._m_refresh_hits.inc()
            if self.policy.prefetch:
                self._maybe_prefetch(name, qtype, now)
            elif self._predict is not None:
                self._maybe_refresh_ahead(name, qtype, now)
            return cached

        if self._predict is not None and self._predict.serve_stale_while_revalidate:
            stale = self._stale_while_revalidate(name, qtype, now)
            if stale is not None:
                return stale

        if subnet is not None:
            self._ecs_subnet = subnet
            self._ecs_scope = None
        try:
            result = self._resolve_with_cnames(name, qtype, now, depth=0)
            if subnet is not None:
                result.ecs_scope = self._ecs_scope
            if (
                self._push is not None
                and result.rcode is Rcode.NOERROR
                and result.answers
                and result.servers_contacted
            ):
                # Subscribe at the server that actually answered, stamped
                # at the moment the answer arrived.
                self._push.note_answer(
                    name, qtype, result.servers_contacted[-1],
                    now + result.elapsed,
                )
            return result
        except ResolutionError as failure:
            stale = self._serve_stale(name, qtype)
            if stale is not None:
                stale.elapsed = failure.elapsed
                self._m_served_stale.inc()
                return stale
            self._m_servfail.inc()
            return ResolutionResult(rcode=Rcode.SERVFAIL, elapsed=failure.elapsed)
        finally:
            if subnet is not None:
                self._ecs_subnet = None

    def note_memoized_answer(self, qname: Name, qtype: RdataType, now: float) -> None:
        """Account for a client query answered from a wire-level memo.

        The serve fast path answers repeat queries without entering
        :meth:`resolve`; this keeps the per-client accounting and the
        popularity tracker honest so hot-set statistics (and the
        ``--predict`` refresh-ahead decisions built on them) see every
        arrival, memoized or not.  Deliberately light — no pump, no cache
        probe — so it stays off the fast path's critical cost.
        """
        self.client_queries += 1
        self._m_client_queries.inc()
        if self._tracker is not None:
            self._tracker.record((qname, qtype), now)

    def pump(self, now: float) -> int:
        """Run due background maintenance; returns refreshes plus
        pushed updates applied.

        Called at the start of every :meth:`resolve` and, when serving
        live, from the frontend's background loop — never between a
        client's arrival and its answer.  Feeds the refresh scheduler
        from the cache's expiry heap (hot names expiring soon get a
        refresh job even without a triggering hit), then executes every
        due job under the refresh budget.
        """
        pumped = 0
        if self._push is not None:
            pumped = self._push.pump(now)
        scheduler = self._scheduler
        if scheduler is None:
            return pumped
        predict = self._predict
        tracker = self._tracker
        if predict is not None and tracker is not None:
            for key, expires_at in self.cache.due_expirations(
                now, predict.feed_horizon_s
            ):
                name, rdtype, rdclass = key
                if rdclass is not RdataClass.IN:
                    continue
                if not tracker.is_hot((name, rdtype)):
                    continue
                entry = self.cache.peek(name, rdtype)
                if entry is None:
                    continue
                lifetime = entry.expires_at - entry.inserted_at
                if lifetime <= 0:
                    continue
                lead = max(predict.min_lead_s, predict.lead_fraction * lifetime)
                scheduler.schedule(
                    name,
                    rdtype,
                    due=max(now, entry.expires_at - lead),
                    expires_at=entry.expires_at,
                )
        return pumped + scheduler.pump(now)

    def restart(self) -> None:
        """Simulate a resolver process restart (crash, deploy, reboot).

        All runtime state — the cache, negative cache, rotation cursors —
        is lost; the next query walks the tree from the root hints again.
        This is the cold-cache cliff the paper's §6.1 guidance (long TTLs
        as a resilience budget) cannot help with, which is why the fault
        layer models it separately from outages.
        """
        self.cache.clear()
        self._rotation.clear()
        if self._scheduler is not None:
            self._scheduler.clear()
        if self._tracker is not None:
            self._tracker.clear()
        if self._push is not None:
            self._push.restart()
        self._refreshed.clear()
        self._m_restarts.inc()

    def _maybe_prefetch(self, qname: Name, qtype: RdataType, now: float) -> None:
        """Unbound-style prefetch: refresh a hit that is close to expiry.

        Runs out of band — the client's answer has already been served
        from cache; a refresh job due *now* lands in the scheduler and
        executes on the next pump, repopulating the cache so the next
        client never sees the miss latency (and this client never pays
        for the refresh).  This is the renewal strategy of Pappas et al.
        the paper's related work discusses.
        """
        entry = self.cache.peek(qname, qtype)
        if entry is None:
            return
        lifetime = entry.expires_at - entry.inserted_at
        if lifetime <= 0:
            return
        remaining = entry.expires_at - now
        if remaining > self.policy.prefetch_window * lifetime:
            return
        assert self._scheduler is not None
        self._scheduler.schedule(qname, qtype, due=now, expires_at=entry.expires_at)

    def _maybe_refresh_ahead(self, qname: Name, qtype: RdataType, now: float) -> None:
        """Schedule a refresh for a hot hit, ``lead`` seconds before expiry."""
        predict = self._predict
        tracker = self._tracker
        assert predict is not None and tracker is not None
        if not tracker.is_hot((qname, qtype)):
            return
        entry = self.cache.peek(qname, qtype)
        if entry is None:
            return
        lifetime = entry.expires_at - entry.inserted_at
        if lifetime <= 0:
            return
        lead = max(predict.min_lead_s, predict.lead_fraction * lifetime)
        assert self._scheduler is not None
        self._scheduler.schedule(
            qname,
            qtype,
            due=max(now, entry.expires_at - lead),
            expires_at=entry.expires_at,
        )

    def _scheduled_refresh(self, qname: Name, qtype: RdataType, when: float) -> bool:
        """The scheduler's callback: one out-of-band re-resolution.

        Runs back-dated to the job's due time (every cache and network
        call takes an explicit timestamp, so this is exact).  Successful
        refreshes note the written generation so later client hits on it
        count as ``predict.refresh_hits``.
        """
        try:
            result = self._resolve_with_cnames(qname, qtype, when, depth=1)
        except ResolutionError:
            return False
        if result.rcode != Rcode.NOERROR or not result.answers:
            return False
        entry = self.cache.peek(qname, qtype)
        if entry is not None:
            refreshed = self._refreshed
            refreshed[(qname, qtype)] = entry.generation
            if len(refreshed) > _MAX_REFRESHED_MEMO:
                del refreshed[next(iter(refreshed))]
        return True

    # -------------------------------------------------------------- cache answers
    def _answer_min_credibility(self) -> Credibility:
        """How credible cached data must be to answer a client directly.

        Child-centric resolvers follow RFC 2181 and only answer from
        answer-rank data; parent-centric ones also hand out referral glue.
        """
        if self.policy.answer_from_referral:
            return Credibility.ADDITIONAL
        return Credibility.NONAUTH_ANSWER

    def _answer_from_cache(
        self, qname: Name, qtype: RdataType, now: float
    ) -> Optional[ResolutionResult]:
        minimum = self._answer_min_credibility()
        chain: list[RRset] = []
        current = qname
        for _ in range(MAX_CNAME_HOPS):
            entry = self.cache.get(current, qtype, now, min_credibility=minimum)
            if entry is not None:
                chain.append(entry.aged_rrset(now))
                return ResolutionResult(
                    rcode=Rcode.NOERROR, answers=chain, cache_hit=True
                )
            alias = self.cache.get(current, RdataType.CNAME, now, min_credibility=minimum)
            if alias is None or qtype == RdataType.CNAME:
                return None
            chain.append(alias.aged_rrset(now))
            target = alias.rrset.rdatas[0]
            assert isinstance(target, CNAME)
            current = target.target
        return None

    def _stale_while_revalidate(
        self, qname: Name, qtype: RdataType, now: float
    ) -> Optional[ResolutionResult]:
        """RFC 8767: answer a miss from stale data *immediately*.

        Unlike the SERVFAIL-only fallback below — which first walks the
        tree, fails, and only then reaches for stale data, charging the
        whole failed resolution to the client — this path answers in
        zero elapsed time with a capped TTL and queues an asynchronous
        revalidation.  The revalidation's ``put`` replaces the stale
        entry atomically (dead entries always lose to fresh data), so
        later clients see either the old stale answer or the complete
        new one, never a gap.  Data older than ``max_stale_s`` is not
        served (RFC 8767 §5's bound); the exact (qname, qtype) key only,
        no stale CNAME chain reassembly.
        """
        predict = self._predict
        assert predict is not None
        entry = self.cache.get_stale(qname, qtype)
        if entry is None:
            return None
        if entry.credibility < self._answer_min_credibility():
            return None
        if now - entry.expires_at > predict.max_stale_s:
            return None
        assert self._scheduler is not None
        self._scheduler.schedule(qname, qtype, due=now, kind="revalidate")
        self._m_stale_answered.inc()
        self._m_served_stale.inc()
        return ResolutionResult(
            rcode=Rcode.NOERROR,
            answers=[entry.rrset.with_ttl(predict.stale_answer_ttl)],
            served_stale=True,
        )

    def _serve_stale(self, qname: Name, qtype: RdataType) -> Optional[ResolutionResult]:
        """Serve-stale fallback: expired data beats SERVFAIL (§3.1)."""
        if not self.policy.serve_stale:
            return None
        entry = self.cache.get_stale(qname, qtype)
        if entry is None:
            return None
        return ResolutionResult(
            rcode=Rcode.NOERROR,
            answers=[entry.rrset.with_ttl(STALE_ANSWER_TTL)],
            served_stale=True,
        )

    # ------------------------------------------------------------------- iteration
    def _resolve_with_cnames(
        self, qname: Name, qtype: RdataType, now: float, depth: int
    ) -> ResolutionResult:
        elapsed = 0.0
        contacted: list[str] = []
        chain: list[RRset] = []
        current = qname
        for _ in range(MAX_CNAME_HOPS):
            outcome = self._iterate(current, qtype, now + elapsed, depth, contacted)
            elapsed += outcome.elapsed
            if outcome.rcode != Rcode.NOERROR or outcome.answers is None:
                return ResolutionResult(
                    rcode=outcome.rcode,
                    answers=chain if outcome.rcode == Rcode.NOERROR else [],
                    elapsed=elapsed,
                    servers_contacted=contacted,
                )
            chain.extend(outcome.answers)
            if outcome.cname_target is None:
                return ResolutionResult(
                    rcode=Rcode.NOERROR,
                    answers=chain,
                    elapsed=elapsed,
                    servers_contacted=contacted,
                )
            current = outcome.cname_target
            # The alias target may already be cached (answer rank or, for
            # parent-centric policies, referral rank).
            cached = self._answer_from_cache(current, qtype, now + elapsed)
            if cached is not None:
                chain.extend(cached.answers)
                return ResolutionResult(
                    rcode=Rcode.NOERROR,
                    answers=chain,
                    elapsed=elapsed,
                    servers_contacted=contacted,
                )
        raise ResolutionError(f"CNAME chain too long for {qname}", elapsed)

    @dataclass
    class _IterationOutcome:
        rcode: Rcode
        elapsed: float
        answers: Optional[list[RRset]] = None
        cname_target: Optional[Name] = None

    def _iterate(
        self,
        qname: Name,
        qtype: RdataType,
        now: float,
        depth: int,
        contacted: list[str],
    ) -> "_IterationOutcome":
        """Walk referrals for one owner name until an answer or failure."""
        try:
            return self._iterate_steps(qname, qtype, now, depth, contacted)
        finally:
            self._m_referral_depth.observe(self._last_iteration_steps)

    def _iterate_steps(
        self,
        qname: Name,
        qtype: RdataType,
        now: float,
        depth: int,
        contacted: list[str],
    ) -> "_IterationOutcome":
        elapsed = 0.0
        previous_cut_depth = -1
        self._last_iteration_steps = 0
        for _ in range(MAX_REFERRAL_STEPS):
            self._last_iteration_steps += 1
            cut, servers = self._best_servers(qname, now + elapsed)

            if cut.is_root and self._root_mirror is not None:
                response = self._local_root_response(qname, qtype, now + elapsed)
            else:
                response, query_time = self._query_servers(
                    cut, servers, qname, qtype, now + elapsed, depth, contacted
                )
                elapsed += query_time

            if response is None:
                raise ResolutionError(f"no server for {qname} reachable", elapsed)

            ns_owner = self._cache_response(response, now + elapsed)

            if response.rcode == Rcode.NXDOMAIN:
                soa = self._soa_from(response)
                self.cache.put_negative(qname, qtype, True, now + elapsed, soa)
                return self._IterationOutcome(Rcode.NXDOMAIN, elapsed)
            if response.rcode != Rcode.NOERROR:
                raise ResolutionError(
                    f"{response.rcode.name} from upstream for {qname}", elapsed
                )

            if response.answer:
                answers, target = self._extract_answers(response, qname, qtype)
                if answers or target is not None:
                    return self._IterationOutcome(
                        Rcode.NOERROR,
                        elapsed,
                        answers=self._client_view(answers, now + elapsed),
                        cname_target=target,
                    )

            if response.is_referral():
                assert ns_owner is not None
                # Parent-centric resolvers treat a referral for the very
                # name and type being asked as the answer (§3.2: OpenDNS
                # returns the root's 2-day TTL for ``NS .uy``).
                if (
                    self.policy.answer_from_referral
                    and qtype == RdataType.NS
                    and ns_owner == qname
                ):
                    referral_ns = response.find_rrset(
                        Section.AUTHORITY, ns_owner, RdataType.NS
                    )
                    assert referral_ns is not None
                    return self._IterationOutcome(
                        Rcode.NOERROR,
                        elapsed,
                        answers=self._client_view([referral_ns], now + elapsed),
                    )
                if len(ns_owner) <= previous_cut_depth:
                    raise ResolutionError(
                        f"referral loop at {ns_owner} resolving {qname}", elapsed
                    )
                previous_cut_depth = len(ns_owner)
                continue

            # Authoritative NODATA: name exists, no records of this type.
            if response.flags.aa:
                soa = self._soa_from(response)
                self.cache.put_negative(qname, qtype, False, now + elapsed, soa)
                return self._IterationOutcome(Rcode.NOERROR, elapsed, answers=[])

            raise ResolutionError(f"lame response for {qname}", elapsed)
        raise ResolutionError(f"too many referrals for {qname}", elapsed)

    def _make_query(self, qname: Name, qtype: RdataType) -> Message:
        """A reusable non-RD query skeleton for (qname, qtype).

        Servers treat queries as read-only (``make_response`` copies the
        fields it echoes), so one skeleton per name/type serves every
        referral step and repeat resolution without rebuilding the
        Question/Flags objects.  The memo is bounded; overflow falls back
        to fresh construction.
        """
        key = (qname, qtype)
        query = self._query_skeletons.get(key)
        if query is None:
            query = Message.make_query(qname, qtype, recursion_desired=False)
            if len(self._query_skeletons) < 1024:
                self._query_skeletons[key] = query
        return query

    # ------------------------------------------------------------- server choice
    def _best_servers(
        self, qname: Name, now: float
    ) -> tuple[Name, list[tuple[Name, Optional[str]]]]:
        """The deepest known zone cut for ``qname`` and its servers.

        Returns ``(cut, [(server_name, address_or_None), ...])``.  Falls
        back to the root hints when nothing useful is cached.
        """
        candidates = [qname, *qname.ancestors()]
        for ancestor in candidates:
            ns_entry = self.cache.get(ancestor, RdataType.NS, now)
            if ns_entry is None and self.policy.sticky:
                ns_entry = self._sticky_revive(ancestor, RdataType.NS, now)
            if ns_entry is None:
                continue
            servers: list[tuple[Name, Optional[str]]] = []
            for rdata in ns_entry.rrset.rdatas:
                assert isinstance(rdata, NS)
                servers.append((rdata.target, self._address_for(rdata.target, now)))
            if not servers:
                continue
            # Bootstrap guard: if no address is cached and every server
            # name lives *inside* this cut, the cut cannot resolve its own
            # servers — fall back to an ancestor (whose glue breaks the
            # circularity), as real resolvers do.
            if all(address is None for _, address in servers) and all(
                target.is_subdomain_of(ancestor) for target, _ in servers
            ):
                continue
            return ancestor, servers
        hints = [(name, address) for name, address in self.root_hints.items()]
        return root, hints

    def _sticky_revive(self, name: Name, rdtype: RdataType, now: float):
        """Sticky resolvers refresh expired infrastructure records in place
        instead of re-fetching them (§4.2)."""
        entry = self.cache.get_stale(name, rdtype)
        if entry is None:
            return None
        key: CacheKey = (name, rdtype, RdataClass.IN)
        self.cache.refresh_expiry(key, now)
        if entry.linked_to is not None:
            self.cache.refresh_expiry(entry.linked_to[0], now)
        return entry

    def _address_for(self, server_name: Name, now: float) -> Optional[str]:
        for rdtype in (RdataType.A, RdataType.AAAA):
            entry = self.cache.get(server_name, rdtype, now)
            if entry is None and self.policy.sticky:
                entry = self._sticky_revive(server_name, rdtype, now)
            if entry is not None and entry.rrset.rdatas:
                return str(entry.rrset.rdatas[0])
        return None

    def _order_servers(
        self, cut: Name, servers: list[tuple[Name, Optional[str]]]
    ) -> list[tuple[Name, Optional[str]]]:
        """Apply the policy's server-selection strategy.

        Servers with known addresses are tried before those needing a
        sub-resolution, mirroring real resolvers' preference for glue.
        """
        keyed = sorted(servers, key=lambda item: item[1] is None)
        if self.policy.server_selection is ServerSelection.FIRST or len(keyed) == 1:
            return keyed
        if self.policy.server_selection is ServerSelection.RANDOM:
            import random

            shuffled = keyed[:]
            random.Random(hash((self.endpoint.address, cut, len(shuffled)))).shuffle(
                shuffled
            )
            return shuffled
        start = self._rotation.get(cut, 0) % len(keyed)
        self._rotation[cut] = start + 1
        return keyed[start:] + keyed[:start]

    def _query_servers(
        self,
        cut: Name,
        servers: list[tuple[Name, Optional[str]]],
        qname: Name,
        qtype: RdataType,
        now: float,
        depth: int,
        contacted: list[str],
    ) -> tuple[Optional[Message], float]:
        """Try the cut's servers in policy order; returns (response, time).

        Sibling-NS failover: a timeout, a lame response, or a truncated
        answer moves on to the next server of the cut (counted in
        ``resolver.failovers`` when another candidate exists) — the
        graceful-degradation path that keeps multi-NS zones answering
        through a single-server outage.
        """
        elapsed = 0.0
        subnet = self._ecs_subnet
        if subnet is not None and self.policy.ecs.allows(qname):
            # ECS queries are built fresh, never memoized: the option
            # bytes vary by client subnet, and sub-resolutions for other
            # (non-whitelisted) names must stay subnet-free.
            query = Message.make_query(qname, qtype, recursion_desired=False)
            query.use_edns(options=subnet.to_wire())
        else:
            query = self._make_query(qname, qtype)
        ordered = self._order_servers(cut, servers)
        last = len(ordered) - 1
        for index, (server_name, address) in enumerate(ordered):
            glue_only = False
            if address is None:
                address, lookup_time = self._resolve_server_address(
                    server_name, cut, now + elapsed, depth
                )
                elapsed += lookup_time
                if address is None:
                    continue
            else:
                entry = self.cache.peek(server_name, RdataType.A) or self.cache.peek(
                    server_name, RdataType.AAAA
                )
                glue_only = (
                    entry is not None and entry.credibility <= Credibility.ADDITIONAL
                )
            try:
                response, exchange_time = self.network.exchange(
                    self.endpoint, address, query, now + elapsed
                )
            except NetworkTimeout as timeout:
                elapsed += timeout.elapsed
                if index < last:
                    self._m_failovers.inc()
                continue
            elapsed += exchange_time
            contacted.append(address)
            self.queries_sent += 1
            self._m_upstream.inc()
            if response.rcode in (Rcode.REFUSED, Rcode.NOTIMP, Rcode.FORMERR):
                # A lame server (not actually serving the zone): try the
                # next one, as real resolvers do.
                if index < last:
                    self._m_failovers.inc()
                continue
            if response.flags.tc:
                # Truncated (e.g. an RRL slip).  We model no TCP retry, so
                # a TC answer is unusable — fail over to a sibling.
                if index < last:
                    self._m_failovers.inc()
                continue
            if glue_only and depth == 0:
                self._target_fetch(cut, server_name, address, now + elapsed)
            return response, elapsed
        return None, elapsed

    def _target_fetch(
        self, cut: Name, server_name: Name, address: str, now: float
    ) -> None:
        """Upgrade a glue address to child-authoritative data (§3.4).

        Target-fetching resolvers send an explicit A query for the server
        name to the child zone itself; the answer (child TTL, answer rank)
        replaces the parent's glue.  Runs out of band: the client's latency
        is unaffected, but the query lands in the authoritative's log —
        these are exactly the queries the paper's passive .nl study counts.
        """
        if not self.policy.target_fetch:
            return
        if not server_name.is_subdomain_of(cut):
            return
        fetch = self._make_query(server_name, RdataType.A)
        try:
            response, _ = self.network.exchange(self.endpoint, address, fetch, now)
        except NetworkTimeout:
            return
        self.queries_sent += 1
        self._m_upstream.inc()
        if not (response.flags.aa and response.answer):
            return
        for rrset in response.rrsets(Section.ANSWER):
            # The upgraded address is still an in-bailiwick server address:
            # keep it tied to the covering NS set so it expires with it
            # (§4.2), unless this resolver trusts addresses independently.
            linked: Optional[CacheKey] = None
            if self.policy.link_inbailiwick_glue and rrset.name.is_subdomain_of(cut):
                linked = (cut, RdataType.NS, RdataClass.IN)
            self.cache.put(rrset, Credibility.AUTH_ANSWER, now, linked_to=linked)

    def _resolve_server_address(
        self, server_name: Name, cut: Name, now: float, depth: int
    ) -> tuple[Optional[str], float]:
        """Resolve an out-of-bailiwick server's address via sub-resolution."""
        if depth >= MAX_SUBRESOLUTION_DEPTH:
            return None, 0.0
        try:
            result = self._resolve_with_cnames(server_name, RdataType.A, now, depth + 1)
        except ResolutionError as failure:
            return None, failure.elapsed
        if result.rcode != Rcode.NOERROR or not result.answers:
            return None, result.elapsed
        final = result.answers[-1]
        if not final.rdatas:
            return None, result.elapsed
        if self.policy.centricity is Centricity.PARENT:
            self._pin_server_address(server_name, cut, now + result.elapsed)
        return str(final.rdatas[0]), result.elapsed

    def _pin_server_address(self, server_name: Name, cut: Name, now: float) -> None:
        """Parent-centric address hold (§4.4's OpenDNS behaviour).

        The paper observes OpenDNS trusting the parent's NS for its full
        2-day TTL and *not* re-fetching the server's (renumbered) address.
        We model that by pinning the learned address and stretching its
        life to the pinned NS entry's expiry.
        """
        ns_entry = self.cache.peek(cut, RdataType.NS)
        address_key: Optional[CacheKey] = None
        for rdtype in (RdataType.A, RdataType.AAAA):
            if self.cache.peek(server_name, rdtype) is not None:
                address_key = (server_name, rdtype, RdataClass.IN)
                break
        if ns_entry is None or address_key is None:
            return
        entry = self.cache.peek(*address_key[:2])
        assert entry is not None
        entry.pinned = True
        entry.expires_at = max(entry.expires_at, ns_entry.expires_at)

    # ------------------------------------------------------------ response intake
    def _local_root_response(self, qname: Name, qtype: RdataType, now: float) -> Message:
        """RFC 7706: answer from the local root copy, no network.

        The copy is a zone-transfer snapshot refreshed on the SOA
        schedule, so root-zone changes propagate with transfer lag rather
        than instantly.
        """
        assert self._root_mirror is not None
        query = self._make_query(qname, qtype)
        return self._root_mirror.zone(now).respond(query)

    def _cache_response(self, response: Message, now: float) -> Optional[Name]:
        """Cache every section at its credibility; returns the NS owner seen."""
        authoritative = response.flags.aa
        parent_side = not authoritative and self.policy.centricity is Centricity.PARENT

        # RFC 7871 §7.3.1: only ANSWER records are subnet-scoped; the
        # authority and additional sections below stay global.  A server
        # echoing scope 0 (or no ECS at all) takes the unchanged path.
        subnet = self._ecs_subnet
        scope = 0
        if subnet is not None and response.edns is not None and response.edns.options:
            try:
                echo = extract_client_subnet(response.edns.options)
            except WireError:
                echo = None
            if echo is not None and echo.family == subnet.family:
                scope = min(echo.scope_prefix, subnet.source_prefix)

        for rrset in response.rrsets(Section.ANSWER):
            credibility = (
                Credibility.AUTH_ANSWER if authoritative else Credibility.NONAUTH_ANSWER
            )
            if self.policy.validate_dnssec:
                from repro.dns.dnssec import clamp_to_signed_ttl, covering_rrsig

                rrsig = covering_rrsig(response.answer, rrset)
                if rrsig is not None:
                    # RFC 4035 §5.3.3: the signed (child) TTL is the
                    # ceiling — the §2 argument for child-centricity.
                    rrset = clamp_to_signed_ttl(rrset, rrsig)
            if scope:
                self.cache.put_scoped(rrset, subnet, scope, now)
                self._ecs_scope = scope
            else:
                self.cache.put(rrset, credibility, now)
                if subnet is not None:
                    self._ecs_scope = 0

        ns_owner: Optional[Name] = None
        for rrset in response.rrsets(Section.AUTHORITY):
            if rrset.rdtype == RdataType.NS and ns_owner is None:
                ns_owner = rrset.name
            credibility = (
                Credibility.AUTH_AUTHORITY if authoritative else Credibility.AUTHORITY
            )
            self.cache.put(rrset, credibility, now, pin=parent_side)

        for rrset in response.rrsets(Section.ADDITIONAL):
            if rrset.rdtype not in (RdataType.A, RdataType.AAAA):
                continue
            linked: Optional[CacheKey] = None
            if (
                self.policy.link_inbailiwick_glue
                and ns_owner is not None
                and rrset.name.in_bailiwick_of(ns_owner)
            ):
                linked = (ns_owner, RdataType.NS, RdataClass.IN)
            credibility = (
                Credibility.AUTH_AUTHORITY if authoritative else Credibility.ADDITIONAL
            )
            self.cache.put(rrset, credibility, now, linked_to=linked, pin=parent_side)
        return ns_owner

    def _extract_answers(
        self, response: Message, qname: Name, qtype: RdataType
    ) -> tuple[list[RRset], Optional[Name]]:
        """The in-response chain for ``qname`` plus a pending CNAME target."""
        answers: list[RRset] = []
        current = qname
        for _ in range(MAX_CNAME_HOPS):
            exact = response.find_rrset(Section.ANSWER, current, qtype)
            if exact is not None:
                answers.append(exact)
                return answers, None
            alias = response.find_rrset(Section.ANSWER, current, RdataType.CNAME)
            if alias is None or qtype == RdataType.CNAME:
                break
            answers.append(alias)
            target = alias.rdatas[0]
            assert isinstance(target, CNAME)
            current = target.target
        if answers:
            return answers, current
        return [], None

    def _client_view(self, rrsets: list[RRset], now: float) -> list[RRset]:
        """Fresh answers as the client sees them: cache-clamped TTLs.

        Reads back through the cache when possible so caps, floors and
        remaining-lifetime arithmetic all apply uniformly.
        """
        viewed: list[RRset] = []
        for rrset in rrsets:
            entry = self.cache.peek(rrset.name, rrset.rdtype)
            if entry is not None and entry.rrset.rdatas == rrset.rdatas:
                viewed.append(entry.aged_rrset(now))
            else:
                viewed.append(rrset.with_ttl(self.cache.effective_ttl(rrset.ttl)))
        return viewed

    def _soa_from(self, response: Message) -> Optional[RRset]:
        for rrset in response.rrsets(Section.AUTHORITY):
            if rrset.rdtype == RdataType.SOA:
                return rrset
        return None
