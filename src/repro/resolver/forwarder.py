"""Forwarding resolvers: the multi-layer client-side infrastructure.

The paper's §4.4 observes that "clients often employ multiple levels of
resolvers, with local resolvers, forwarders, and sometimes replicated
recursive resolvers", and that this complex infrastructure "affects what
users see from what operators announce" — e.g. cache fragmentation makes
some OpenDNS clients see a mix of old and new answers (§4.4).

A :class:`ForwardingResolver` holds its own cache but performs no
iteration: misses are forwarded to one or more upstream recursive
resolvers (round-robin across upstreams, which is exactly what fragments
caches — successive queries may hit different upstream caches with
different remaining TTLs).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint
from repro.resolver.cache import Cache, Credibility
from repro.resolver.recursive import RecursiveResolver, ResolutionResult

Upstream = Union[RecursiveResolver, "ForwardingResolver"]


class ForwardingResolver:
    """A caching forwarder in front of one or more recursive resolvers."""

    def __init__(
        self,
        endpoint: Endpoint,
        upstreams: Sequence[Upstream],
        latency: LatencyModel,
        max_ttl: Optional[int] = None,
        min_ttl: int = 0,
    ) -> None:
        if not upstreams:
            raise ValueError("a forwarder needs at least one upstream")
        self.endpoint = endpoint
        self.upstreams = list(upstreams)
        self.cache = Cache(max_ttl=max_ttl, min_ttl=min_ttl)
        self._latency = latency
        self._next_upstream = 0
        self.client_queries = 0
        self.forwarded_queries = 0

    def __repr__(self) -> str:
        return f"ForwardingResolver({self.endpoint.address}, {len(self.upstreams)} upstreams)"

    @property
    def address(self) -> str:
        return self.endpoint.address

    def _pick_upstream(self) -> Upstream:
        """Round-robin — the cache-fragmenting behaviour of §4.4."""
        upstream = self.upstreams[self._next_upstream % len(self.upstreams)]
        self._next_upstream += 1
        return upstream

    def _upstream_leg(self, upstream: Upstream) -> float:
        """RTT from this forwarder to the chosen upstream, in seconds."""
        if upstream.endpoint.asn == self.endpoint.asn:
            return self._latency.last_mile_rtt()
        return self._latency.rtt(self.endpoint, upstream.endpoint)

    def resolve(self, qname: Name | str, qtype: RdataType, now: float) -> ResolutionResult:
        """Answer from the local cache, else forward."""
        self.client_queries += 1
        name = Name(qname)

        negative = self.cache.get_negative(name, qtype, now)
        if negative is not None:
            rcode = Rcode.NXDOMAIN if negative.nxdomain else Rcode.NOERROR
            return ResolutionResult(rcode=rcode, cache_hit=True)

        entry = self.cache.get(name, qtype, now)
        if entry is not None:
            return ResolutionResult(
                rcode=Rcode.NOERROR,
                answers=[entry.aged_rrset(now)],
                cache_hit=True,
            )

        upstream = self._pick_upstream()
        leg = self._upstream_leg(upstream)
        self.forwarded_queries += 1
        result = upstream.resolve(name, qtype, now + leg / 2.0)
        elapsed = leg + result.elapsed

        if result.rcode == Rcode.NOERROR and result.answers:
            for rrset in result.answers:
                # The upstream is non-authoritative; its answers cache at
                # non-auth answer rank.
                self.cache.put(
                    rrset, Credibility.NONAUTH_ANSWER, now + elapsed
                )
        elif result.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN) and not result.answers:
            self.cache.put_negative(
                name, qtype, result.rcode == Rcode.NXDOMAIN, now + elapsed
            )

        return ResolutionResult(
            rcode=result.rcode,
            answers=result.answers,
            elapsed=elapsed,
            cache_hit=False,
            served_stale=result.served_stale,
            servers_contacted=[upstream.address, *result.servers_contacted],
        )
