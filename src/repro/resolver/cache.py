"""The resolver cache.

Entries are RRsets stamped with an expiry time and a *credibility* rank
(RFC 2181 §5.4.1): data from the answer section of an authoritative reply
outranks data from the authority section, which outranks glue from the
additional section.  An arriving RRset only replaces a live cached entry of
equal or higher rank — this single rule is what makes most resolvers
child-centric, because the child zone's authoritative answer (top rank)
overwrites the parent's glue (bottom rank) but not vice versa.

Two extensions model behaviours the paper measures:

- **linked expiry** — an entry may be linked to another key (in-bailiwick
  glue linked to its covering NS set); when the link target is gone the
  entry is treated as expired (§4.2: "in-domain servers have tied NS and A
  record cache times in practice"),
- **pinned entries** — never replaced while live, used by parent-centric
  resolvers that keep the parent's data even when child data arrives.

Stale entries are retained (not purged) so serve-stale policies
(draft-ietf-dnsop-serve-stale) can hand them out when all servers are
unreachable.

Maintenance is O(log n) amortized, not O(n) scans: a lazy min-heap of
``(expires_at, seq, key, generation)`` records surfaces time-expired
entries, and a reverse dependency index surfaces link-dead ones.  Heap
records are never removed in place — they are validated when popped
(superseded generations and extended lifetimes are discarded or
re-pushed), so every mutation stays cheap.  Dead entries found this way
are *marked* (``_time_dead`` / ``_link_dead``), not dropped: serve-stale
still needs them.  The marks make them the preferred eviction victims;
marks are re-validated before use, because a sticky refresh can revive a
marked entry.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.dns.ecs import ClientSubnet
from repro.dns.name import Name
from repro.dns.rdtypes import RdataClass, RdataType
from repro.dns.record import RRset
from repro.metrics.registry import NULL_COUNTER, NULL_GAUGE

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry

CacheKey = tuple[Name, RdataType, RdataClass]


class Credibility(enum.IntEnum):
    """RFC 2181 §5.4.1 trust ranking, low to high."""

    ADDITIONAL = 1  # glue in the additional section of a referral
    AUTHORITY = 2  # NS in the authority section of a referral (no AA)
    NONAUTH_ANSWER = 3  # answer section, AA clear
    AUTH_AUTHORITY = 4  # authority/additional sections of an AA response
    AUTH_ANSWER = 5  # answer section of an AA response


@dataclass
class CacheEntry:
    """One cached RRset."""

    rrset: RRset
    credibility: Credibility
    inserted_at: float
    expires_at: float
    #: Generation stamp; bumped every time the key is (re)written.
    generation: int = 0
    #: (key, generation) this entry's life is tied to — in-bailiwick glue is
    #: linked to the *specific* NS entry it arrived with, so a later refresh
    #: of the NS set does not resurrect old glue.
    linked_to: Optional[tuple[CacheKey, int]] = None
    #: Pinned entries are never overwritten while live (parent-centric hold).
    pinned: bool = False
    #: The zone origin the data came from, for analysis/debugging.
    source_zone: Optional[Name] = None
    #: Memoized aged view, reused while the whole-second TTL is unchanged.
    _aged: Optional[RRset] = field(default=None, init=False, repr=False, compare=False)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> int:
        """Whole seconds of life left, floored at zero."""
        return max(0, int(self.expires_at - now))

    def aged_rrset(self, now: float) -> RRset:
        """The RRset with its TTL decremented by time spent in cache.

        The view is a shared, treat-as-immutable object: repeated hits
        within the same whole second return the same RRset instead of
        rebuilding one per hit.
        """
        ttl = self.remaining_ttl(now)
        rrset = self.rrset
        if ttl == rrset.ttl:
            return rrset
        view = self._aged
        if view is not None and view.ttl == ttl:
            return view
        view = rrset.with_ttl(ttl)
        self._aged = view
        return view

    def key(self) -> CacheKey:
        return (self.rrset.name, self.rrset.rdtype, self.rrset.rdclass)


@dataclass
class ScopedEntry:
    """One subnet-scoped RRset in the ECS overlay (RFC 7871 §7.3.1).

    ``network`` is the answer's covered network as a left-aligned integer
    (the first ``scope`` bits are significant); ``source_network`` is the
    client subnet that originally fetched the answer, kept so hits from
    *other* covered subnets can be counted as scope merges.
    """

    rrset: RRset
    family: int
    scope: int
    network: int
    source_network: int
    inserted_at: float
    expires_at: float
    _aged: Optional[RRset] = field(default=None, init=False, repr=False, compare=False)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> int:
        return max(0, int(self.expires_at - now))

    def aged_rrset(self, now: float) -> RRset:
        """The TTL-decremented view; shared per whole second, like
        :meth:`CacheEntry.aged_rrset`."""
        ttl = self.remaining_ttl(now)
        rrset = self.rrset
        if ttl == rrset.ttl:
            return rrset
        view = self._aged
        if view is not None and view.ttl == ttl:
            return view
        view = rrset.with_ttl(ttl)
        self._aged = view
        return view


@dataclass
class NegativeEntry:
    """A cached negative answer (RFC 2308)."""

    qname: Name
    qtype: RdataType
    nxdomain: bool  # False → NODATA
    expires_at: float
    soa: Optional[RRset] = None

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    inserts: int = 0
    refused_downgrades: int = 0
    evictions: int = 0
    negative_hits: int = 0
    negative_misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Cache:
    """A credibility-aware TTL cache for one resolver (or resolver pool)."""

    def __init__(
        self,
        max_ttl: Optional[int] = None,
        min_ttl: int = 0,
        max_entries: Optional[int] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        """``max_ttl``/``min_ttl`` clamp TTLs at insertion time.

        A 21599 s ``max_ttl`` reproduces the capping the paper attributes
        to Google Public DNS (§3.3); a ``min_ttl`` of tens of seconds
        reproduces the floor that limits CDN agility (§6.1).
        ``max_entries`` bounds the cache size with least-recently-used
        eviction, as production resolvers do; ``None`` means unbounded
        (the default — the paper's experiments never fill real caches).

        ``metrics``: an optional shared registry; every cache attached to
        it contributes to the world-wide ``cache.*`` counters (per-cache
        counts stay available on :attr:`stats`).
        """
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        # dict preserves insertion order; get() re-inserts to track recency.
        self._entries: dict[CacheKey, CacheEntry] = {}
        self._negatives: dict[tuple[Name, RdataType], NegativeEntry] = {}
        self._generations: dict[CacheKey, int] = {}
        #: Lazy expiry heap: (expires_at, seq, key, generation).  ``seq`` is a
        #: monotonic push counter so ties never compare keys.
        self._expiry_heap: list[tuple[float, int, CacheKey, int]] = []
        self._neg_heap: list[tuple[float, int, tuple[Name, RdataType]]] = []
        self._seq = 0
        #: Reverse link index: target key -> {dependent key: expected target
        #: generation}.  Consulted when a target is replaced or expires so
        #: link-dead dependents become preferred eviction victims.
        self._dependents: dict[CacheKey, dict[CacheKey, int]] = {}
        #: Ordered mark sets (dict-as-ordered-set) of entries believed dead;
        #: re-validated before every use, since refreshes can revive them.
        self._time_dead: dict[CacheKey, None] = {}
        self._link_dead: dict[CacheKey, None] = {}
        self.max_ttl = max_ttl
        self.min_ttl = min_ttl
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Change-notification hook: called with the owner :class:`Name` of
        #: any entry whose served bytes may have changed (write, eviction,
        #: forced expiry, lifetime refresh, negative insert), or ``None``
        #: for a whole-cache flush.  Downstream wire-level caches (the
        #: serve-path response memo) subscribe here; unset costs nothing.
        self.on_change: Optional[Callable[[Optional[Name]], None]] = None
        #: ECS overlay (RFC 7871): per-key lists of subnet-scoped answers.
        #: Scope-0 answers never land here — they go through :meth:`put`
        #: unchanged — so a resolver that never sends ECS never touches
        #: this dict and its metrics instruments are never created,
        #: keeping non-ECS metrics output byte-identical.
        self._ecs: dict[CacheKey, list[ScopedEntry]] = {}
        self._metrics_registry = metrics
        self._m_ecs_entries = None
        self._m_scope_merges = None
        #: Push-invalidation instruments (repro.push): created on first
        #: pushed update so non-push runs snapshot byte-identically.
        self._m_push_updates = None
        self._m_push_invalidations = None
        if metrics is not None:
            self._m_hits = metrics.counter("cache.hits")
            self._m_misses = metrics.counter("cache.misses")
            self._m_expired = metrics.counter("cache.expired")
            self._m_stale = metrics.counter("cache.stale_served")
            self._m_inserts = metrics.counter("cache.inserts")
            self._m_refused = metrics.counter("cache.refused_downgrades")
            self._m_evictions = metrics.counter("cache.evictions")
            self._m_negative_hits = metrics.counter("cache.negative_hits")
            self._m_negative_misses = metrics.counter("cache.negative_misses")
            self._m_size_peak = metrics.gauge("cache.size_peak")
        else:
            self._m_hits = self._m_misses = self._m_expired = NULL_COUNTER
            self._m_stale = self._m_inserts = self._m_refused = NULL_COUNTER
            self._m_evictions = NULL_COUNTER
            self._m_negative_hits = self._m_negative_misses = NULL_COUNTER
            self._m_size_peak = NULL_GAUGE

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._ecs.clear()
        self._negatives.clear()
        self._expiry_heap.clear()
        self._neg_heap.clear()
        self._dependents.clear()
        self._time_dead.clear()
        self._link_dead.clear()
        if self.on_change is not None:
            self.on_change(None)

    # -- insertion -----------------------------------------------------------
    def effective_ttl(self, ttl: int) -> int:
        """The TTL this cache will actually honour for an incoming record."""
        effective = ttl
        if self.max_ttl is not None:
            effective = min(effective, self.max_ttl)
        return max(effective, self.min_ttl)

    def _is_dead(self, entry: CacheEntry, now: float) -> bool:
        """Expired, or linked to an entry that has expired or been replaced."""
        if now >= entry.expires_at:
            return True
        link = entry.linked_to
        if link is not None:
            target_key, generation = link
            target = self._entries.get(target_key)
            if target is None or target.generation != generation or now >= target.expires_at:
                return True
        return False

    def _push(self, key: CacheKey, entry: CacheEntry) -> None:
        self._seq += 1
        heapq.heappush(
            self._expiry_heap, (entry.expires_at, self._seq, key, entry.generation)
        )

    def put(
        self,
        rrset: RRset,
        credibility: Credibility,
        now: float,
        linked_to: Optional[CacheKey] = None,
        pin: bool = False,
        source_zone: Optional[Name] = None,
    ) -> bool:
        """Insert ``rrset``; returns True if the cache changed.

        Replacement rules (modelled on BIND's cache update policy):

        - dead entries (expired or with a broken link) are always replaced;
        - live pinned entries always survive;
        - strictly higher credibility always replaces;
        - equal credibility replaces (refreshes) only at the top
          (authoritative-answer) rank — live glue, referral and
          authority-section data is *not* refreshed by repetitions of
          itself.  This is BIND's trust-ranking behaviour and what makes
          the §4.2 result possible: the old server's answers keep carrying
          its NS + glue, yet resolvers still switch when the originally
          cached NS set expires.
        """
        key: CacheKey = (rrset.name, rrset.rdtype, rrset.rdclass)
        existing = self._entries.get(key)
        if existing is not None and not self._is_dead(existing, now):
            refreshable = (
                credibility > existing.credibility
                or (
                    credibility == existing.credibility
                    and credibility >= Credibility.AUTH_ANSWER
                )
            )
            if existing.pinned or not refreshable:
                self.stats.refused_downgrades += 1
                self._m_refused.inc()
                return False
        generation = self._generations.get(key, 0) + 1
        self._generations[key] = generation
        # Replacing this key kills anything linked to its previous
        # generation: surface those dependents as eviction candidates.
        dependents = self._dependents.pop(key, None)
        if dependents:
            on_change = self.on_change
            for dep_key in dependents:
                self._link_dead[dep_key] = None
                if on_change is not None:
                    on_change(dep_key[0])
        link: Optional[tuple[CacheKey, int]] = None
        if linked_to is not None:
            target = self._entries.get(linked_to)
            if target is not None:
                link = (linked_to, target.generation)
                self._dependents.setdefault(linked_to, {})[key] = target.generation
        ttl = self.effective_ttl(rrset.ttl)
        if existing is not None:
            del self._entries[key]  # re-insert at the recent end
        entry = CacheEntry(
            rrset=rrset,
            credibility=credibility,
            inserted_at=now,
            expires_at=now + ttl,
            generation=generation,
            linked_to=link,
            pinned=pin,
            source_zone=source_zone,
        )
        self._entries[key] = entry
        # A fresh write invalidates any standing dead-mark for the key.
        self._time_dead.pop(key, None)
        self._link_dead.pop(key, None)
        self._push(key, entry)
        self.stats.inserts += 1
        self._m_inserts.inc()
        self._m_size_peak.record(len(self._entries))
        if self.on_change is not None:
            self.on_change(key[0])
        self._evict_if_full(now)
        return True

    def _surface_expired(self, now: float) -> None:
        """Pop every heap record whose entry is time-expired at ``now``.

        Expired entries are *marked* (``_time_dead``), not removed —
        serve-stale retention is unchanged.  Records superseded by a newer
        generation are discarded; records invalidated by an in-place
        lifetime extension are re-pushed at the new expiry.  Dependents of
        an expired link target are marked link-dead.
        """
        heap = self._expiry_heap
        entries = self._entries
        while heap:
            expires_at, _, key, generation = heap[0]
            if expires_at > now:
                return
            heapq.heappop(heap)
            entry = entries.get(key)
            if entry is None or entry.generation != generation:
                continue  # superseded or gone: stale record
            if entry.expires_at > now:
                # Lifetime extended in place (sticky refresh / parent pin):
                # track the new expiry.
                self._push(key, entry)
                continue
            self._time_dead[key] = None
            dependents = self._dependents.get(key)
            if dependents:
                # Do not pop the index: a revived target (same generation)
                # must keep its dependents registered.  Marks are
                # re-validated before use, so over-marking is safe.
                for dep_key, expected in dependents.items():
                    if expected == entry.generation:
                        self._link_dead[dep_key] = None

    def _evict_one(self, key: CacheKey) -> None:
        del self._entries[key]
        self.stats.evictions += 1
        self._m_evictions.inc()
        if self.on_change is not None:
            self.on_change(key[0])

    def _evict_if_full(self, now: float) -> None:
        """LRU eviction: drop dead entries first, then the least recently
        used live ones (pinned entries go last).

        Dead victims come from the expiry heap and the link-death marks
        (O(log n) amortized); only a cache full of live entries walks the
        recency order, and that walk stops at the first unpinned entry.
        """
        if self.max_entries is None:
            return
        overflow = len(self._entries) - self.max_entries
        if overflow <= 0:
            return
        self._surface_expired(now)
        while overflow > 0 and self._time_dead:
            key = next(iter(self._time_dead))
            del self._time_dead[key]
            entry = self._entries.get(key)
            if entry is None:
                continue
            if not entry.is_expired(now):
                self._push(key, entry)  # revived: restore its heap record
                continue
            self._evict_one(key)
            overflow -= 1
        while overflow > 0 and self._link_dead:
            key = next(iter(self._link_dead))
            del self._link_dead[key]
            entry = self._entries.get(key)
            if entry is None or not self._is_dead(entry, now):
                continue  # stale mark (entry replaced or link revived)
            self._evict_one(key)
            overflow -= 1
        while overflow > 0:
            victim: Optional[CacheKey] = None
            for key, entry in self._entries.items():
                if not entry.pinned:
                    victim = key
                    break
            if victim is None:
                victim = next(iter(self._entries))  # all pinned: evict LRU
            self._evict_one(victim)
            overflow -= 1

    def put_negative(
        self,
        qname: Name,
        qtype: RdataType,
        nxdomain: bool,
        now: float,
        soa: Optional[RRset] = None,
    ) -> None:
        """Cache a negative answer for min(SOA TTL, SOA MINIMUM) seconds."""
        from repro.dns.rdtypes import SOA as SOAData

        ttl = 300
        if soa is not None and soa.rdatas:
            soa_rdata = soa.rdatas[0]
            assert isinstance(soa_rdata, SOAData)
            ttl = min(soa.ttl, soa_rdata.minimum)
        ttl = self.effective_ttl(ttl)
        key = (qname, qtype)
        self._negatives[key] = NegativeEntry(
            qname=qname,
            qtype=qtype,
            nxdomain=nxdomain,
            expires_at=now + ttl,
            soa=soa,
        )
        self._seq += 1
        heapq.heappush(self._neg_heap, (now + ttl, self._seq, key))
        if self.on_change is not None:
            self.on_change(qname)

    # -- ECS scoped overlay (RFC 7871) ---------------------------------------
    def _ecs_instruments(self) -> None:
        """Create the ECS metrics lazily, on the first scoped insert.

        Non-ECS runs must produce byte-identical metrics snapshots to a
        build without ECS at all, so these instruments must not exist
        until a scoped answer actually enters the cache.
        """
        if self._m_ecs_entries is None:
            registry = self._metrics_registry
            if registry is not None:
                self._m_ecs_entries = registry.gauge("cache.ecs_scoped_entries")
                self._m_scope_merges = registry.counter("ecs.scope_merges")
            else:
                self._m_ecs_entries = NULL_GAUGE
                self._m_scope_merges = NULL_COUNTER

    def put_scoped(
        self, rrset: RRset, subnet: ClientSubnet, scope: int, now: float
    ) -> None:
        """Cache ``rrset`` as valid only for the first ``scope`` bits of
        ``subnet``'s network.

        An existing entry for the same (scope, network) is replaced; other
        scopes and networks coexist under the same key — this is where the
        100–1000x cache-cardinality multiplier lives.
        """
        if not 1 <= scope <= subnet.source_prefix:
            raise ValueError(
                f"scope {scope} outside 1..{subnet.source_prefix}; "
                "scope-0 answers belong in put() (global cache)"
            )
        self._ecs_instruments()
        bits = 32 if subnet.family == 1 else 128
        network = subnet.network_bits() >> (bits - scope) << (bits - scope)
        key: CacheKey = (rrset.name, rrset.rdtype, rrset.rdclass)
        bucket = self._ecs.get(key)
        if bucket is None:
            bucket = self._ecs[key] = []
        else:
            bucket[:] = [entry for entry in bucket if not entry.is_expired(now)]
        entry = ScopedEntry(
            rrset=rrset,
            family=subnet.family,
            scope=scope,
            network=network,
            source_network=subnet.network_bits(),
            inserted_at=now,
            expires_at=now + self.effective_ttl(rrset.ttl),
        )
        for index, existing in enumerate(bucket):
            if existing.family == entry.family and existing.scope == scope and existing.network == network:
                bucket[index] = entry
                break
        else:
            bucket.append(entry)
        self.stats.inserts += 1
        self._m_inserts.inc()
        self._m_ecs_entries.record(self.ecs_scoped_len())
        if self.on_change is not None:
            self.on_change(key[0])

    def get_scoped(
        self,
        name: Name,
        rdtype: RdataType,
        subnet: ClientSubnet,
        now: float,
        rdclass: RdataClass = RdataClass.IN,
    ) -> Optional[ScopedEntry]:
        """The live scoped answer covering ``subnet``, most specific first.

        A miss is *not* counted here: the caller falls through to the
        global cache, whose :meth:`get` does the accounting — so a query
        answered globally still counts exactly one hit or miss.
        """
        bucket = self._ecs.get((name, rdtype, rdclass))
        if not bucket:
            return None
        query_bits = subnet.network_bits()
        family_bits = 32 if subnet.family == 1 else 128
        best: Optional[ScopedEntry] = None
        alive = [entry for entry in bucket if not entry.is_expired(now)]
        if len(alive) != len(bucket):
            bucket[:] = alive
        for entry in alive:
            if entry.family != subnet.family or subnet.source_prefix < entry.scope:
                continue
            if (entry.network ^ query_bits) >> (family_bits - entry.scope):
                continue
            if best is None or entry.scope > best.scope:
                best = entry
        if best is None:
            return None
        self.stats.hits += 1
        self._m_hits.inc()
        if best.source_network != query_bits:
            # A different covered subnet fetched this answer: the scope
            # declared by the authoritative merged two client subnets
            # into one cache entry.
            self._m_scope_merges.inc()
        return best

    def ecs_scoped_len(self) -> int:
        """Total scoped entries across all keys (dead ones included until
        their bucket is next touched)."""
        return sum(len(bucket) for bucket in self._ecs.values())

    # -- lookup ---------------------------------------------------------------
    def peek(
        self, name: Name, rdtype: RdataType, rdclass: RdataClass = RdataClass.IN
    ) -> Optional[CacheEntry]:
        """The raw entry regardless of expiry; no stats, no link checks."""
        return self._entries.get((name, rdtype, rdclass))

    def get(
        self,
        name: Name,
        rdtype: RdataType,
        now: float,
        rdclass: RdataClass = RdataClass.IN,
        min_credibility: Credibility = Credibility.ADDITIONAL,
        follow_links: bool = True,
    ) -> Optional[CacheEntry]:
        """A live entry of at least ``min_credibility``, else ``None``.

        ``follow_links``: when set (the default) an entry whose link target
        is expired or missing counts as expired itself.  This is the tied
        NS/A lifetime of §4.2.
        """
        return self.get_entry((name, rdtype, rdclass), now, min_credibility, follow_links)

    def get_entry(
        self,
        key: CacheKey,
        now: float,
        min_credibility: Credibility = Credibility.ADDITIONAL,
        follow_links: bool = True,
    ) -> Optional[CacheEntry]:
        """:meth:`get` for callers that already hold a :data:`CacheKey`.

        The warm path's form: one dict probe, no tuple rebuild.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            self._m_misses.inc()
            return None
        dead = self._is_dead(entry, now) if follow_links else now >= entry.expires_at
        if dead or entry.credibility < min_credibility:
            self.stats.misses += 1
            self._m_misses.inc()
            if dead:
                self._m_expired.inc()
            return None
        self.stats.hits += 1
        self._m_hits.inc()
        entries = self._entries
        if self.max_entries is not None and next(reversed(entries)) != key:
            # Touch for LRU recency (only tracked when bounded, and only
            # when the entry is not already the most recent).
            del entries[key]
            entries[key] = entry
        return entry

    def get_stale(
        self, name: Name, rdtype: RdataType, rdclass: RdataClass = RdataClass.IN
    ) -> Optional[CacheEntry]:
        """Any entry, live or expired — the serve-stale fallback."""
        entry = self._entries.get((name, rdtype, rdclass))
        if entry is not None:
            self.stats.stale_hits += 1
            self._m_stale.inc()
        return entry

    def peek_negative(self, qname: Name, qtype: RdataType) -> Optional[NegativeEntry]:
        """The raw negative entry regardless of expiry; no stats."""
        return self._negatives.get((qname, qtype))

    def get_negative(
        self, qname: Name, qtype: RdataType, now: float
    ) -> Optional[NegativeEntry]:
        entry = self._negatives.get((qname, qtype))
        if entry is None or entry.is_expired(now):
            self.stats.negative_misses += 1
            self._m_negative_misses.inc()
            return None
        self.stats.negative_hits += 1
        self._m_negative_hits.inc()
        return entry

    def due_expirations(self, now: float, horizon: float) -> list[tuple[CacheKey, float]]:
        """Live entries expiring within ``horizon`` seconds of ``now``.

        The refresh-ahead expiry feed: a read-only pass over the lazy
        expiry heap.  Records inside the window are popped, validated
        exactly as :meth:`_surface_expired` would (superseded records
        discarded, extended lifetimes re-pushed), and every record that
        still describes its entry is pushed back so later maintenance
        sees the heap unchanged.  Already-expired entries are *not*
        returned (stale-while-revalidate owns those) and not marked —
        this method has no side effects on cache state.
        """
        deadline = now + horizon
        heap = self._expiry_heap
        entries = self._entries
        due: list[tuple[CacheKey, float]] = []
        keep: list[tuple[float, int, CacheKey, int]] = []
        while heap and heap[0][0] <= deadline:
            record = heapq.heappop(heap)
            expires_at, _, key, generation = record
            entry = entries.get(key)
            if entry is None or entry.generation != generation:
                continue  # superseded or gone: drop the stale record
            if entry.expires_at > expires_at:
                # Lifetime extended in place: track the new expiry.
                self._push(key, entry)
                continue
            keep.append(record)
            if expires_at > now:
                due.append((key, expires_at))
        for record in keep:
            heapq.heappush(heap, record)
        return due

    # -- maintenance -------------------------------------------------------------
    def refresh_expiry(self, key: CacheKey, now: float) -> None:
        """Reset an entry's lifetime as if freshly inserted (sticky refresh)."""
        entry = self._entries.get(key)
        if entry is None:
            return
        lifetime = entry.expires_at - entry.inserted_at
        entry.inserted_at = now
        entry.expires_at = now + lifetime
        self._push(key, entry)
        if self.on_change is not None:
            self.on_change(key[0])

    def expire_now(self, key: CacheKey, now: float) -> None:
        """Force-expire an entry (used by tests and cache-flush scenarios)."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.expires_at = now
            self._push(key, entry)
            if self.on_change is not None:
                self.on_change(key[0])

    # -- push invalidation (repro.push) ---------------------------------------
    def _push_instruments(self) -> None:
        if self._m_push_updates is not None:
            return
        registry = self._metrics_registry
        if registry is not None:
            self._m_push_updates = registry.counter("cache.push_updates")
            self._m_push_invalidations = registry.counter("cache.push_invalidations")
        else:
            self._m_push_updates = NULL_COUNTER
            self._m_push_invalidations = NULL_COUNTER

    def push_update(self, rrset: RRset, now: float) -> bool:
        """Apply a pushed record update in place (repro.push NOTIFY).

        Pushed data is the authoritative answer by construction, so it
        lands at :attr:`Credibility.AUTH_ANSWER` and replaces any live
        unpinned entry; the lifetime restarts at the pushed TTL, exactly
        as if the resolver had refetched at the instant of the change.
        Returns whether the cache changed (pinned entries survive).
        """
        self._push_instruments()
        changed = self.put(rrset, Credibility.AUTH_ANSWER, now)
        if changed:
            self._m_push_updates.inc()
        return changed

    def push_invalidate(
        self,
        name: Name,
        rdtype: RdataType,
        now: float,
        rdclass: RdataClass = RdataClass.IN,
    ) -> bool:
        """Invalidate on push (NOTIFY in invalidate mode, or a removal).

        The cached entry is force-expired so the next query refetches;
        serve-stale policies may still hand the old value out, exactly as
        they would for a naturally-expired record.  Returns whether an
        entry was present to invalidate.
        """
        self._push_instruments()
        key: CacheKey = (name, rdtype, rdclass)
        if self._entries.get(key) is None:
            return False
        self.expire_now(key, now)
        self._m_push_invalidations.inc()
        return True

    def purge_expired(self, now: float) -> int:
        """Drop time-expired entries (counted as evictions); returns how
        many were removed, negative entries included."""
        self._surface_expired(now)
        removed = 0
        for key in list(self._time_dead):
            del self._time_dead[key]
            entry = self._entries.get(key)
            if entry is None:
                continue
            if not entry.is_expired(now):
                self._push(key, entry)  # revived since it was marked
                continue
            self._evict_one(key)
            removed += 1
        neg_heap = self._neg_heap
        while neg_heap and neg_heap[0][0] <= now:
            _, _, neg_key = heapq.heappop(neg_heap)
            entry = self._negatives.get(neg_key)
            if entry is None or not entry.is_expired(now):
                continue  # replaced by a fresher negative (its own record follows)
            del self._negatives[neg_key]
            removed += 1
        return removed

    def live_entries(self, now: float) -> list[CacheEntry]:
        return [entry for entry in self._entries.values() if not entry.is_expired(now)]
