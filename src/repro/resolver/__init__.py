"""Recursive resolvers with configurable caching policies.

The paper's central observation is that "the effective DNS TTL is often
different from what is configured because TTLs appear in multiple locations
and resolvers make different choices in which TTL they prefer."  This
package models those choices explicitly:

- :mod:`repro.resolver.cache` — a TTL cache with RFC 2181 §5.4.1
  credibility ranking and optional linked expiry (in-bailiwick glue dies
  with its covering NS set),
- :mod:`repro.resolver.policy` — the knobs observed in the wild: parent- vs
  child-centricity, TTL caps and floors, serve-stale, RFC 7706 local root,
  sticky server pinning,
- :mod:`repro.resolver.recursive` — the iterative resolution engine,
- :mod:`repro.resolver.stub` — the client-side API, and
- :mod:`repro.resolver.population` — builders for resolver populations that
  match the behaviour mix the paper measured.
"""

from repro.resolver.cache import Cache, CacheEntry, Credibility
from repro.resolver.forwarder import ForwardingResolver
from repro.resolver.policy import Centricity, ResolverPolicy
from repro.resolver.recursive import RecursiveResolver, ResolutionResult
from repro.resolver.stub import StubResolver
from repro.resolver.population import PopulationConfig, ResolverPopulation

__all__ = [
    "Cache",
    "CacheEntry",
    "Centricity",
    "Credibility",
    "ForwardingResolver",
    "PopulationConfig",
    "RecursiveResolver",
    "ResolutionResult",
    "ResolverPolicy",
    "ResolverPopulation",
    "StubResolver",
]
