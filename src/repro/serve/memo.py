"""Encode-once memoization of hot responses.

A resolver frontend spends most of a hot query's budget on work whose
result never changes between two arrivals of the *same* query while the
underlying cache state holds still: decode, cache lookup, response
assembly, wire encoding.  :class:`ResponseMemo` caches the final wire
bytes keyed on everything after the 2-byte DNS ID (``query_wire[2:]``),
so two queries that differ only in ID — the definition of a repeat —
hit the memo, and two queries that differ in *anything* else (flags,
qname case, EDNS payload, OPT options) cannot alias.  A hit costs one
dict probe plus a 2-byte ID splice; the decoder never runs.

Correctness contract — a memoized answer must be byte-identical to what
a fresh encode would produce at the serving instant, which pins down
exactly when an entry may be reused:

- **TTL-tick validity**: a cached RRset's client-visible TTL is
  ``int(expires_at - now)``, which decrements every time ``now`` crosses
  ``expires_at - ttl``.  An entry encoded with TTLs ``T_i`` from cache
  records expiring at ``E_i`` is therefore valid only while
  ``now <= min(E_i - T_i)`` — the instant before any encoded TTL would
  tick down.  Past that bound the entry is dropped on sight, so a
  memoized answer can never overstate a TTL, and in particular can never
  outlive one;
- **write invalidation**: any cache write, eviction, forced expiry, or
  negative insert for a name invalidates every memo entry whose response
  used that name (the qname and every answer-section owner, so CNAME
  chains are covered).  The hook is
  :attr:`repro.resolver.cache.Cache.on_change` — which is what makes a
  ``--predict`` refresh or a stale-revalidation drop the memo the moment
  it lands, even though neither changes the entry's old expiry feed.

The memo is bounded; at capacity the oldest entry is dropped (hot
entries are re-memoized on their next slow pass, so FIFO here costs one
extra resolution, not correctness).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType

#: Default bound on memoized responses (distinct post-ID query forms).
DEFAULT_MEMO_CAPACITY = 4096


class MemoEntry:
    """One memoized response plus what the bookkeeping paths need."""

    __slots__ = ("wire", "valid_until", "qname", "qtype", "rcode_name", "names")

    def __init__(
        self,
        wire: bytes,
        valid_until: float,
        qname: Name,
        qtype: RdataType,
        rcode_name: str,
        names: tuple[Name, ...],
    ) -> None:
        self.wire = wire
        #: Last sim instant at which the encoded bytes are still exact.
        self.valid_until = valid_until
        self.qname = qname
        self.qtype = qtype
        self.rcode_name = rcode_name
        #: Every owner name the response depends on (qname + answer owners).
        self.names = names


class ResponseMemo:
    """Bounded wire-response cache keyed on the post-ID query bytes."""

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"memo capacity must be positive, not {capacity}")
        self.capacity = capacity
        self._entries: dict[bytes, MemoEntry] = {}
        #: Reverse index: owner name -> memo keys whose response used it.
        self._by_name: dict[Name, set[bytes]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- the fast path -----------------------------------------------------
    def get(self, key: bytes, sim_now: float) -> Optional[MemoEntry]:
        """The entry for ``key`` still exact at ``sim_now``, else ``None``.

        An entry past its validity bound is dropped on sight: at least
        one of its encoded TTLs has ticked down since it was built.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if sim_now > entry.valid_until:
            self._drop(key, entry)
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        key: bytes,
        wire: bytes,
        valid_until: float,
        qname: Name,
        qtype: RdataType,
        rcode_name: str,
        answer_names: Iterable[Name] = (),
    ) -> None:
        entries = self._entries
        old = entries.get(key)
        if old is not None:
            self._drop(key, old)
        elif len(entries) >= self.capacity:
            oldest_key = next(iter(entries))
            self._drop(oldest_key, entries[oldest_key])
        names = (qname,) + tuple(name for name in answer_names if name != qname)
        entry = MemoEntry(wire, valid_until, qname, qtype, rcode_name, names)
        entries[key] = entry
        by_name = self._by_name
        for name in names:
            by_name.setdefault(name, set()).add(key)

    # -- invalidation ------------------------------------------------------
    def invalidate_name(self, name: Optional[Name]) -> int:
        """Drop every entry whose response used ``name``; ``None`` → all.

        This is the :attr:`Cache.on_change` callback target: writes,
        evictions, forced expiry, and negative inserts all land here.
        Returns the number of entries dropped.
        """
        if name is None:
            dropped = len(self._entries)
            self.invalidations += dropped
            self._entries.clear()
            self._by_name.clear()
            return dropped
        keys = self._by_name.get(name)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            entry = self._entries.get(key)
            if entry is not None:
                self._drop(key, entry)
                dropped += 1
        return dropped

    def clear(self) -> None:
        self.invalidate_name(None)

    def _drop(self, key: bytes, entry: MemoEntry) -> None:
        del self._entries[key]
        self.invalidations += 1
        by_name = self._by_name
        for name in entry.names:
            keys = by_name.get(name)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del by_name[name]
