"""Serving configuration and frontend assembly.

A :class:`ServeConfig` names one of the canonical simulated worlds from
:mod:`repro.core.worlds` and the knobs of the live frontend;
:func:`build_frontend` turns it into a ready :class:`DnsFrontend` backed
by a fresh world, resolver, and metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.worlds import (
    World,
    build_cl_world,
    build_controlled_world,
    build_googleco_world,
    build_nl_world,
    build_uy_world,
)
from repro.dns.message import DEFAULT_EDNS_PAYLOAD
from repro.dns.rdtypes import RdataType
from repro.metrics import MetricsRegistry
from repro.net.topology import Region
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver
from repro.serve.batchio import DEFAULT_BATCH_SIZE
from repro.serve.bridge import WallClockBridge
from repro.serve.frontend import DnsFrontend
from repro.serve.memo import DEFAULT_MEMO_CAPACITY, ResponseMemo
from repro.server.querylog import QueryLogWriter
from repro.server.rrl import ResponseRateLimiter

#: Canonical worlds a live server can front.  Wrapper dataclasses
#: (NlWorld, UyWorld, ...) are unwrapped to the underlying World.
WORLD_BUILDERS: dict[str, Callable[[int], World]] = {
    "cl": lambda seed: build_cl_world(seed=seed),
    "uy": lambda seed: build_uy_world(seed=seed).world,
    "googleco": lambda seed: build_googleco_world(seed=seed),
    "nl": lambda seed: build_nl_world(seed=seed).world,
    "controlled": lambda seed: build_controlled_world(seed=seed).world,
}


@dataclass
class ServeConfig:
    """Everything `repro serve` needs to bring up one worker."""

    world: str = "nl"
    seed: int = 0
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (single worker only)
    workers: int = 1
    #: Queries admitted but not yet answered before shedding kicks in.
    max_inflight: int = 256
    #: Per-client responses per second; 0 disables RRL.
    rrl_rate: int = 0
    #: Largest UDP response we will send, EDNS or not.
    max_udp_payload: int = DEFAULT_EDNS_PAYLOAD
    #: Sim seconds per wall second (tests use >1 to age TTLs quickly).
    time_scale: float = 1.0
    sim_start: float = 0.0
    #: Enable repro.predict: refresh-ahead for hot names plus RFC 8767
    #: stale-while-revalidate instead of SERVFAIL on dead upstreams.
    predict: bool = False
    #: Accept RFC 7871 ECS options from clients, attach them upstream,
    #: and cache scoped answers per subnet (--ecs).  Off by default so
    #: the serving hot path stays byte-identical without it.
    ecs: bool = False
    #: Datagrams drained/flushed per syscall on the UDP hot path.
    batch_size: int = DEFAULT_BATCH_SIZE
    #: False forces the portable one-datagram I/O loop (--no-batch).
    batching: bool = True
    #: False disables the encode-once response memo (--no-memo).
    memo: bool = True
    memo_capacity: int = DEFAULT_MEMO_CAPACITY
    #: Event-loop policy: "auto" uses uvloop when importable, "on"
    #: requires it, "off" sticks to the stdlib loop.
    uvloop: str = "auto"
    #: Resolve the top-N hot names into each worker's cache before it
    #: starts accepting traffic (SO_REUSEPORT workers have private
    #: caches, so without this every worker re-pays the cold start).
    prewarm: int = 0
    #: Qname pattern for prewarm, rank 0 = most popular (matches the
    #: loadgen default over the nl world).
    prewarm_template: str = "www.domain{}.nl."
    querylog_path: Optional[str] = None
    metrics_path: Optional[str] = None
    server_name: str = "serve"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.world not in WORLD_BUILDERS:
            known = ", ".join(sorted(WORLD_BUILDERS))
            raise ValueError(f"unknown world {self.world!r} (have: {known})")
        if self.workers < 1:
            raise ValueError(f"need at least one worker, not {self.workers}")
        if self.workers > 1 and self.port == 0:
            raise ValueError(
                "SO_REUSEPORT sharding needs an explicit --port; an ephemeral "
                "port would give every worker a different socket"
            )
        if self.max_inflight < 1:
            raise ValueError(f"in-flight budget must be positive, not {self.max_inflight}")
        if self.batch_size < 1:
            raise ValueError(f"batch size must be positive, not {self.batch_size}")
        if self.memo_capacity < 1:
            raise ValueError(
                f"memo capacity must be positive, not {self.memo_capacity}"
            )
        if self.uvloop not in ("auto", "on", "off"):
            raise ValueError(
                f"uvloop must be auto, on, or off, not {self.uvloop!r}"
            )
        if self.prewarm < 0:
            raise ValueError(f"prewarm count must be >= 0, not {self.prewarm}")


def build_frontend(
    config: ServeConfig,
    wall_clock: Optional[Callable[[], float]] = None,
    worker_index: int = 0,
) -> tuple[DnsFrontend, MetricsRegistry]:
    """Build a world, resolver, and frontend for one serving worker.

    Each worker owns a private world and cache (the sim stack is
    single-threaded by design); SO_REUSEPORT spreads clients across them
    the way an anycast site spreads catchments.
    """
    registry = MetricsRegistry()
    world = WORLD_BUILDERS[config.world](config.seed + worker_index)
    world.network.attach_metrics(registry)
    policy = (
        ResolverPolicy.predictive()
        if config.predict
        else ResolverPolicy.child_centric()
    )
    if config.ecs:
        from repro.resolver.policy import EcsPolicy

        policy = policy.with_(ecs=EcsPolicy())
    resolver = RecursiveResolver(
        endpoint=world.topology.endpoint_in_region(
            Region.EU, name=f"{config.server_name}-resolver"
        ),
        network=world.network,
        root_hints=world.hints,
        root_zone=world.root_zone,
        policy=policy,
    )
    querylog = None
    if config.querylog_path:
        path = config.querylog_path
        if config.workers > 1:
            path = f"{path}.worker{worker_index}"
        querylog = QueryLogWriter(path)
    frontend = DnsFrontend(
        resolver=resolver,
        bridge=WallClockBridge(
            sim_start=config.sim_start,
            time_scale=config.time_scale,
            wall_clock=wall_clock,
        ),
        registry=registry,
        rrl=ResponseRateLimiter(rate=config.rrl_rate),
        querylog=querylog,
        max_udp_payload=config.max_udp_payload,
        server_name=(
            config.server_name
            if config.workers == 1
            else f"{config.server_name}:{worker_index}"
        ),
        memo=ResponseMemo(config.memo_capacity) if config.memo else None,
    )
    if config.prewarm > 0:
        _prewarm(frontend, config)
    return frontend, registry


def _prewarm(frontend: DnsFrontend, config: ServeConfig) -> None:
    """Resolve the hot set into the worker's cache before it serves.

    Rank 0 is the most popular name under the Zipf workloads, so warming
    ranks ``0..prewarm-1`` front-loads exactly the names the memo will
    live on.  Failures are ignored — a name the world cannot resolve
    warms nothing but breaks nothing.
    """
    now = frontend.bridge.now()
    resolver = frontend.resolver
    for rank in range(config.prewarm):
        try:
            resolver.resolve(config.prewarm_template.format(rank), RdataType.A, now=now)
        except Exception:
            continue
