"""The live DNS frontend: wire bytes in, wire bytes out.

:class:`DnsFrontend` is transport-agnostic — the UDP and TCP servers in
:mod:`repro.serve.server` hand it raw datagrams and it hands back raw
responses (or ``None`` for "send nothing").  It decodes with the
:mod:`repro.dns` codec, resolves through a :class:`RecursiveResolver`
whose cache ages on the :class:`WallClockBridge` timeline, and applies
the live-path policies a real resolver frontend needs: FORMERR for
garbage, NOTIMP for exotic opcodes, RRL slip/drop, EDNS payload
negotiation, and truncation with TC=1 for oversized UDP answers.
"""

from __future__ import annotations

import math
import struct
import time
from dataclasses import dataclass
from typing import Optional

from repro.dns.message import Message, Opcode, Rcode, Section
from repro.dns.wire import WireError
from repro.metrics import HOST, MetricsRegistry, log_buckets
from repro.resolver.recursive import RecursiveResolver
from repro.serve.bridge import WallClockBridge
from repro.serve.memo import ResponseMemo
from repro.server.querylog import QueryLogEntry, QueryLogWriter
from repro.server.rrl import ResponseRateLimiter, RrlVerdict

#: Wall-clock handling latency buckets: 10 µs .. 10 s, four per decade.
LATENCY_BUCKETS_MS = log_buckets(0.01, 10_000.0, per_decade=4)

#: Clients that advertise no EDNS get the classic RFC 1035 ceiling.
_HEADER = struct.Struct(">HHHHHH")


def servfail_wire(query_wire: bytes) -> Optional[bytes]:
    """A bare SERVFAIL echoing only the 12-octet header.

    Used on the shed path, where we refuse to spend decode work: the ID
    comes straight from the first two octets, nothing else is trusted.
    Returns ``None`` for datagrams too short to carry a header.
    """
    if len(query_wire) < 12:
        return None
    (query_id,) = struct.unpack_from(">H", query_wire)
    # qr + rd + ra + SERVFAIL; question is not echoed (we never parsed it).
    return _HEADER.pack(query_id, 0x8182, 0, 0, 0, 0)


@dataclass
class ServeResult:
    """One handled datagram: the bytes to send (maybe none) and why."""

    wire: Optional[bytes]
    outcome: str  # answered | malformed | dropped | slipped | shed


class DnsFrontend:
    """Decode, resolve, and encode one query at a time.

    Deliberately synchronous: the resolver and cache beneath it are
    single-threaded, so the server runs one frontend per event loop and
    scales across cores with SO_REUSEPORT workers instead of threads.
    """

    def __init__(
        self,
        resolver: RecursiveResolver,
        bridge: WallClockBridge,
        registry: Optional[MetricsRegistry] = None,
        rrl: Optional[ResponseRateLimiter] = None,
        querylog: Optional[QueryLogWriter] = None,
        max_udp_payload: int = 1232,
        server_name: str = "serve",
        memo: Optional[ResponseMemo] = None,
    ) -> None:
        self.resolver = resolver
        self.bridge = bridge
        self.rrl = rrl or ResponseRateLimiter(rate=0)
        self.querylog = querylog
        self.max_udp_payload = max_udp_payload
        self.server_name = server_name
        self.memo = memo
        if memo is not None:
            # Any cache mutation that can change served bytes drops the
            # affected memo entries — see repro.serve.memo for the contract.
            resolver.cache.on_change = memo.invalidate_name
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._m_queries = registry.counter("serve.queries", domain=HOST)
        self._m_malformed = registry.counter("serve.malformed", domain=HOST)
        self._m_dropped = registry.counter("serve.dropped", domain=HOST)
        self._m_truncated = registry.counter("serve.truncated", domain=HOST)
        self._m_slipped = registry.counter("serve.rrl_slipped", domain=HOST)
        self._m_tcp = registry.counter("serve.tcp_queries", domain=HOST)
        self._m_cache_hits = registry.counter("serve.cache_hits", domain=HOST)
        self._m_memo_hits = registry.counter("serve.memo_hits", domain=HOST)
        self._m_rcodes = registry.labeled_counter("serve.rcode", domain=HOST)
        #: Per-worker query counts, labeled by server name, so merged
        #: multi-worker snapshots keep the flow-steering balance visible.
        self._m_worker_queries = registry.labeled_counter(
            "serve.worker_queries", domain=HOST
        )
        self._m_latency = registry.histogram(
            "serve.latency_ms", LATENCY_BUCKETS_MS, domain=HOST
        )
        # serve.shed lives here too so one registry carries the whole
        # serving story, but the *server* increments it (sheds happen
        # before the frontend ever sees the datagram).
        self.shed_counter = registry.counter("serve.shed", domain=HOST)

    # -- entry point -------------------------------------------------------
    def handle_wire(
        self, data: bytes, client: str, via_tcp: bool = False
    ) -> ServeResult:
        """Process one query datagram; returns the response bytes, if any."""
        started = time.monotonic()
        self._m_queries.inc()
        self._m_worker_queries.inc(self.server_name)
        if via_tcp:
            self._m_tcp.inc()
        try:
            query = Message.from_wire(data)
        except (WireError, ValueError):
            self._m_malformed.inc()
            return ServeResult(self._formerr(data), "malformed")
        if query.flags.qr or query.question is None:
            # A response (or an empty query) aimed at a server: never
            # answer, or two servers can be made to ping-pong forever.
            self._m_dropped.inc()
            return ServeResult(None, "dropped")

        sim_now = self.bridge.now()
        if not via_tcp and self.rrl.rate > 0:
            verdict = self.rrl.check(client, self.bridge.wall_elapsed())
            if verdict is RrlVerdict.SLIP:
                self._m_slipped.inc()
                response = query.make_response(recursion_available=True)
                response.flags = _with_tc(response.flags)
                self._finish(query, client, sim_now, started, response.rcode)
                return ServeResult(response.to_wire(), "slipped")
            if verdict is RrlVerdict.DROP:
                self._m_dropped.inc()
                return ServeResult(None, "dropped")

        if query.opcode != Opcode.QUERY:
            response = query.make_response(
                rcode=Rcode.NOTIMP, recursion_available=True
            )
            wire = self._encode(query, response, via_tcp)
            self._finish(query, client, sim_now, started, Rcode.NOTIMP)
            return ServeResult(wire, "answered")

        response = self._resolve(query, sim_now)
        wire = self._encode(query, response, via_tcp)
        if self.memo is not None and not via_tcp:
            self._maybe_memoize(data, query, response, wire, sim_now)
        self._finish(query, client, sim_now, started, response.rcode)
        return ServeResult(wire, "answered")

    def fast_answer(self, data: bytes, client: str) -> Optional[bytes]:
        """Answer a repeat UDP query from the response memo, or ``None``.

        The serving loop tries this before queueing a datagram for the
        full pipeline.  A hit costs one dict probe plus a 2-byte ID
        splice — no decode, no resolver — and is byte-identical to what
        the slow path would have produced at this instant (the memo's
        validity contract).  Full accounting still happens: query
        counters, rcode, latency, popularity tracking, and the querylog
        line, so fast-path answers are indistinguishable downstream.

        Never used when RRL is armed (the limiter must see every client)
        and never for TCP (framing differs; TCP repeats are rare).
        """
        memo = self.memo
        if memo is None or self.rrl.rate > 0 or len(data) < 12:
            return None
        started = time.monotonic()
        sim_now = self.bridge.now()
        entry = memo.get(data[2:], sim_now)
        if entry is None:
            return None
        self._m_queries.inc()
        self._m_worker_queries.inc(self.server_name)
        self._m_cache_hits.inc()
        self._m_memo_hits.inc()
        self.resolver.note_memoized_answer(entry.qname, entry.qtype, sim_now)
        self._m_rcodes.inc(entry.rcode_name)
        self._m_latency.observe((time.monotonic() - started) * 1000.0)
        if self.querylog is not None:
            self.querylog.append(
                QueryLogEntry(
                    timestamp=sim_now,
                    client_address=client,
                    client_asn=0,
                    qname=entry.qname,
                    qtype=entry.qtype,
                    server=self.server_name,
                )
            )
        return data[:2] + entry.wire[2:]

    def _maybe_memoize(
        self,
        data: bytes,
        query: Message,
        response: Message,
        wire: Optional[bytes],
        sim_now: float,
    ) -> None:
        """Memoize an answered UDP response when it is provably reusable.

        Only plain answered outcomes qualify — NOERROR/NXDOMAIN, not
        truncated — and every answer RRset must be backed by a live,
        link-free cache entry whose remaining TTL matches the encoded
        one (rules out served-stale and records that never hit cache).
        The validity bound is the instant before any encoded TTL ticks
        down; see :mod:`repro.serve.memo` for the full contract.
        """
        if wire is None or len(data) < 12:
            return
        rcode = response.rcode
        if rcode is not Rcode.NOERROR and rcode is not Rcode.NXDOMAIN:
            return
        if response.flags.tc:
            return
        question = query.question
        assert question is not None
        cache = self.resolver.cache
        answers = response.rrsets(Section.ANSWER)
        if answers:
            valid_until = math.inf
            for rrset in answers:
                entry = cache.peek(rrset.name, rrset.rdtype, rrset.rdclass)
                if (
                    entry is None
                    or entry.linked_to is not None
                    or entry.expires_at <= sim_now
                    or entry.remaining_ttl(sim_now) != rrset.ttl
                ):
                    return
                valid_until = min(valid_until, entry.expires_at - rrset.ttl)
        else:
            # Negative (NXDOMAIN/NODATA) answers carry no TTL bytes; they
            # are reusable while the negative entry lives.  Stop just
            # short of the expiry instant, where the slow path would
            # re-resolve (and re-query the authoritative).
            negative = cache.peek_negative(question.qname, question.qtype)
            if negative is None or negative.expires_at <= sim_now:
                return
            valid_until = math.nextafter(negative.expires_at, -math.inf)
        self.memo.put(
            bytes(data[2:]),
            wire,
            valid_until,
            question.qname,
            question.qtype,
            rcode.name,
            tuple(rrset.name for rrset in answers),
        )

    def pump(self) -> int:
        """Run due predictive refreshes against the bridge's current time.

        The server calls this from a background loop so hot names are
        re-resolved shortly before expiry even when no query is in
        flight; returns the number of refreshes executed (always 0 for
        a resolver without a predict policy).
        """
        return self.resolver.pump(self.bridge.now())

    # -- pieces ------------------------------------------------------------
    def _resolve(self, query: Message, sim_now: float) -> Message:
        question = query.question
        assert question is not None
        subnet = None
        if self.resolver.policy.ecs is not None and query.edns is not None:
            # RFC 7871 §7.1: a resolver accepts ECS from its clients the
            # same way it would derive a subnet from their address.  The
            # gate on policy.ecs keeps ECS-off serving byte-identical.
            from repro.dns.ecs import extract_client_subnet

            try:
                subnet = extract_client_subnet(query.edns.options)
            except WireError:
                return query.make_response(
                    rcode=Rcode.FORMERR, recursion_available=True
                )
        try:
            result = self.resolver.resolve(
                question.qname, question.qtype, now=sim_now,
                client_subnet=subnet,
            )
        except Exception:
            # The sim stack raising through the live path must not kill
            # the event loop; a resolver bug becomes a SERVFAIL.
            return query.make_response(
                rcode=Rcode.SERVFAIL, recursion_available=True
            )
        if result.cache_hit:
            self._m_cache_hits.inc()
        response = query.make_response(rcode=result.rcode, recursion_available=True)
        for rrset in result.answers:
            response.add(Section.ANSWER, *rrset.records())
        if subnet is not None:
            # Echo the subnet with the scope the resolution produced
            # (0 when the answer is global); _encode keeps the option.
            response.use_edns(
                options=subnet.with_scope(result.ecs_scope or 0).to_wire()
            )
        return response

    def _encode(self, query: Message, response: Message, via_tcp: bool) -> bytes:
        if query.edns is not None:
            response.use_edns(
                udp_payload=self.max_udp_payload,
                options=response.edns.options if response.edns is not None else b"",
            )
        wire = response.to_wire()
        if via_tcp:
            return wire
        limit = min(query.udp_payload_limit, self.max_udp_payload)
        if len(wire) <= limit:
            return wire
        # Truncate section by section (additional, authority, answer)
        # until the response fits, then flag TC so the client retries TCP.
        self._m_truncated.inc()
        for section in (Section.ADDITIONAL, Section.AUTHORITY, Section.ANSWER):
            response.section(section).clear()
            wire = response.to_wire()
            if len(wire) <= limit:
                break
        response.flags = _with_tc(response.flags)
        return response.to_wire()

    def _formerr(self, data: bytes) -> Optional[bytes]:
        """FORMERR for undecodable queries whose header still parses."""
        if len(data) < 12:
            return None
        query_id, bits = struct.unpack_from(">HH", data)
        if bits & 0x8000:  # malformed *response*: never answer
            return None
        return _HEADER.pack(query_id, 0x8001 | (bits & 0x0100), 0, 0, 0, 0)

    def _finish(
        self,
        query: Message,
        client: str,
        sim_now: float,
        started: float,
        rcode: Rcode,
    ) -> None:
        self._m_rcodes.inc(rcode.name)
        self._m_latency.observe((time.monotonic() - started) * 1000.0)
        if self.querylog is not None and query.question is not None:
            self.querylog.append(
                QueryLogEntry(
                    timestamp=sim_now,
                    client_address=client,
                    client_asn=0,
                    qname=query.question.qname,
                    qtype=query.question.qtype,
                    server=self.server_name,
                )
            )

    def close(self) -> None:
        if self.querylog is not None:
            self.querylog.close()


def _with_tc(flags):
    from dataclasses import replace

    return replace(flags, tc=True)
