"""The asyncio serving loop: batched UDP, framed TCP, bounded in-flight.

One :class:`ServeServer` is one event loop owning one
:class:`DnsFrontend`.  The UDP socket is drained *eagerly* on every
readiness event — a burst sitting in the kernel buffer is pulled into
userspace in batches (``recvmmsg`` where available, a portable loop
otherwise; see :mod:`repro.serve.batchio`) — and each datagram takes one
of three doors, cheapest first:

1. **fast path** — a memoized hot response is spliced with the client's
   DNS ID and collected for a batched ``sendmmsg`` flush, never touching
   the queue, the decoder, or the resolver;
2. **admission** — everything else enters the bounded in-flight queue
   for the full decode→resolve→encode pipeline;
3. **shed** — a full queue answers straight from the receive path with a
   bare SERVFAIL.  Shedding early and explicitly is what keeps an
   overloaded server's latency bounded instead of its backlog; leaving
   the burst in the kernel buffer would just convert overload into
   silent drops.

(asyncio's DatagramProtocol reads one datagram per loop iteration, which
interleaves 1:1 with the drain task and can never surface a burst —
hence the raw ``add_reader`` socket.)  TCP connections use the RFC 1035
§4.2.2 two-octet length framing and serve the truncation-retry path.
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Optional

from repro.metrics import HOST
from repro.serve.batchio import DEFAULT_BATCH_SIZE, make_batcher
from repro.serve.frontend import DnsFrontend, servfail_wire

#: Longest framed TCP query we will read (RFC 1035 allows up to 64 KiB).
MAX_TCP_QUERY = 0xFFFF

#: Readiness callbacks process at most this many receive batches before
#: yielding, so a sustained flood of fast-path hits cannot starve the
#: drain task, TCP readers, or signal handlers.  Level-triggered
#: ``add_reader`` re-fires immediately if datagrams remain.
MAX_BATCHES_PER_WAKEUP = 8


class ServeServer:
    """One worker: a UDP endpoint, a TCP listener, and a drain task."""

    def __init__(
        self,
        frontend: DnsFrontend,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 256,
        reuse_port: bool = False,
        predict_interval: float = 1.0,
        batch_size: int = DEFAULT_BATCH_SIZE,
        batching: bool = True,
    ) -> None:
        self.frontend = frontend
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.reuse_port = reuse_port
        self.predict_interval = predict_interval
        self.batch_size = batch_size
        self.batching = batching
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_inflight)
        self._udp_sock: Optional[socket.socket] = None
        self.batcher = None  # built at start(), once the socket exists
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._predict_task: Optional[asyncio.Task] = None
        self._inflight_peak = 0
        self.bound_port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> int:
        """Bind UDP + TCP and start draining; returns the bound port."""
        loop = asyncio.get_running_loop()
        udp_sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        if self.reuse_port:
            udp_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        udp_sock.setblocking(False)
        udp_sock.bind((self.host, self.port))
        self.bound_port = udp_sock.getsockname()[1]
        self._udp_sock = udp_sock
        # ``batching=False`` forces the portable one-datagram loop (the
        # CI equivalence job and --no-batch); auto-detect otherwise.
        self.batcher = make_batcher(
            udp_sock, self.batch_size, prefer_mmsg=None if self.batching else False
        )
        loop.add_reader(udp_sock.fileno(), self._on_udp_readable)
        self._tcp_server = await asyncio.start_server(
            self._serve_tcp,
            host=self.host,
            port=self.bound_port,
            reuse_port=self.reuse_port or None,
        )
        self._drain_task = asyncio.create_task(self._drain())
        if self.frontend.resolver.policy.predict is not None:
            self._predict_task = asyncio.create_task(self._predict_pump())
        return self.bound_port

    async def stop(self) -> None:
        """Graceful drain: stop accepting, answer what was admitted."""
        loop = asyncio.get_running_loop()
        if self._udp_sock is not None:
            loop.remove_reader(self._udp_sock.fileno())
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        if self._predict_task is not None:
            self._predict_task.cancel()
            try:
                await self._predict_task
            except asyncio.CancelledError:
                pass
        await self._queue.join()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
        if self._udp_sock is not None:
            self._udp_sock.close()
            self._udp_sock = None
            self.batcher = None
        gauge = self.frontend.registry.gauge("serve.inflight_peak", domain=HOST)
        gauge.record(self._inflight_peak)
        self.frontend.close()

    # -- UDP ---------------------------------------------------------------
    def _on_udp_readable(self) -> None:
        """Drain the kernel buffer in batches; answer, admit, or shed.

        Pulling the burst out in one callback is what makes overload
        visible: every datagram is either answered inline from the memo,
        admitted under the in-flight budget, or refused with an early
        SERVFAIL right here, instead of rotting in (and eventually
        overflowing) the kernel's receive buffer.  All inline responses
        from one wakeup — fast-path hits and sheds alike — leave in a
        single batched flush at the end.
        """
        batcher = self.batcher
        if batcher is None:
            return
        frontend = self.frontend
        fast_answer = frontend.fast_answer if frontend.memo is not None else None
        queue = self._queue
        out: list[tuple[bytes, tuple]] = []
        for _ in range(MAX_BATCHES_PER_WAKEUP):
            try:
                batch = batcher.recv_batch()
            except OSError:
                break
            if not batch:
                break
            for data, addr in batch:
                if fast_answer is not None:
                    wire = fast_answer(data, addr[0])
                    if wire is not None:
                        out.append((wire, addr))
                        continue
                try:
                    queue.put_nowait((data, addr))
                    depth = queue.qsize()
                    if depth > self._inflight_peak:
                        self._inflight_peak = depth
                except asyncio.QueueFull:
                    frontend.shed_counter.inc()
                    shed = servfail_wire(data)
                    if shed is not None:
                        out.append((shed, addr))
            if len(batch) < batcher.batch_size:
                break  # kernel buffer drained; skip the empty syscall
        if out:
            batcher.send_batch(out)

    def _sendto(self, wire: bytes, addr) -> None:
        if self._udp_sock is None:
            return
        try:
            self._udp_sock.sendto(wire, addr)
        except (BlockingIOError, InterruptedError, OSError):
            pass  # UDP is best-effort; a full send buffer is a drop

    async def _drain(self) -> None:
        while True:
            data, addr = await self._queue.get()
            try:
                result = self.frontend.handle_wire(data, client=addr[0], via_tcp=False)
                if result.wire is not None:
                    self._sendto(result.wire, addr)
            finally:
                self._queue.task_done()
            # One handled datagram per loop tick keeps TCP readers and
            # signal handlers responsive under a UDP flood.
            await asyncio.sleep(0)

    async def _predict_pump(self) -> None:
        """The live refresh-ahead loop: re-resolve hot names off-path.

        Runs due predictive work against the wall-clock bridge once per
        interval so refreshes land before expiry even on an idle socket.
        A resolver bug here must not kill the worker: the pump is
        best-effort and the client path never depends on it.
        """
        while True:
            await asyncio.sleep(self.predict_interval)
            try:
                self.frontend.pump()
            except Exception:
                continue

    # -- TCP ---------------------------------------------------------------
    async def _serve_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else "tcp"
        try:
            while True:
                try:
                    header = await reader.readexactly(2)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                (length,) = struct.unpack(">H", header)
                if length == 0 or length > MAX_TCP_QUERY:
                    break
                try:
                    data = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                result = self.frontend.handle_wire(data, client=client, via_tcp=True)
                if result.wire is None:
                    break
                writer.write(struct.pack(">H", len(result.wire)) + result.wire)
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def run_server(
    server: ServeServer, ready: Optional[asyncio.Event] = None
) -> None:
    """Start ``server`` and serve until cancelled, then drain gracefully."""
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await asyncio.Event().wait()  # sleep until cancelled
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
