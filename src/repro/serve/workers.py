"""Multi-core serving via SO_REUSEPORT process sharding.

The sim stack under the frontend is single-threaded by contract (that is
what makes campaign metrics byte-identical), so one event loop can use at
most one core.  ``run_workers`` forks N processes that each build a
*private* world + resolver + cache and bind the same (host, port) with
SO_REUSEPORT; the kernel then hashes clients across workers the way
anycast hashes them across sites.  Each worker writes its own metrics
snapshot on exit and the parent merges them — the same
``merge_snapshots`` discipline the parallel campaign runner uses.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
from typing import Optional

from repro.metrics import MetricsSnapshot, merge_snapshots
from repro.serve.config import ServeConfig, build_frontend


def worker_metrics_path(metrics_path: str, worker_index: int) -> str:
    return f"{metrics_path}.worker{worker_index}"


def install_event_loop(policy: str) -> str:
    """Install the event loop ``policy`` ("auto" | "on" | "off").

    Returns the name of the loop actually in effect ("uvloop" or
    "asyncio").  "auto" quietly keeps the stdlib loop when uvloop is not
    importable — the fast path must never *require* it — while "on"
    raises so a misconfigured deployment fails loudly instead of
    silently running slower.
    """
    import asyncio

    if policy == "off":
        return "asyncio"
    try:
        import uvloop
    except ImportError:
        if policy == "on":
            raise RuntimeError(
                "--uvloop on requested but uvloop is not installed"
            ) from None
        return "asyncio"
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return "uvloop"


def run_worker(config: ServeConfig, worker_index: int = 0) -> None:
    """Run one serving worker until SIGINT/SIGTERM, then drain and export.

    This is the whole life of a `repro serve` process: build the world,
    serve, and leave a metrics snapshot behind.
    """
    import asyncio

    from repro.serve.server import ServeServer

    loop_name = install_event_loop(config.uvloop)
    frontend, registry = build_frontend(config, worker_index=worker_index)
    server = ServeServer(
        frontend,
        host=config.host,
        port=config.port,
        max_inflight=config.max_inflight,
        reuse_port=config.workers > 1,
        batch_size=config.batch_size,
        batching=config.batching,
    )

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stopping.set)
        port = await server.start()
        # The ready lines are a contract: tests, the smoke job, and the
        # bench all scrape the bound port from them.  Several workers
        # share this pipe, so each line goes out as ONE write (atomic on
        # POSIX pipes below PIPE_BUF) — print()'s separate text/newline
        # writes can tear, merging two workers' ready lines into one.
        batcher = server.batcher
        sys.stdout.write(
            f"repro-serve: worker {worker_index} listening on "
            f"{config.host}:{port} (udp+tcp)\n"
        )
        sys.stdout.write(
            f"repro-serve: worker {worker_index} fast path: "
            f"io={batcher.kind if batcher is not None else 'none'}x{config.batch_size} "
            f"memo={'on' if frontend.memo is not None else 'off'} "
            f"loop={loop_name} prewarm={config.prewarm}\n"
        )
        sys.stdout.flush()
        await stopping.wait()
        await server.stop()

    asyncio.run(main())

    if config.metrics_path:
        path = config.metrics_path
        if config.workers > 1:
            path = worker_metrics_path(config.metrics_path, worker_index)
        payload = registry.snapshot().to_json(include_host=True)
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(payload + "\n")


def _worker_entry(config: ServeConfig, worker_index: int) -> None:
    # Children inherit the parent's signal disposition; re-raise defaults
    # so asyncio's handlers (installed in run_worker) are the only ones.
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    try:
        run_worker(config, worker_index)
    except KeyboardInterrupt:
        sys.exit(0)


def run_workers(config: ServeConfig) -> int:
    """Serve with ``config.workers`` processes; returns an exit status.

    The parent is a pure supervisor: it forwards SIGINT/SIGTERM to the
    children, waits, then merges their metrics snapshots into
    ``config.metrics_path``.
    """
    if config.workers == 1:
        run_worker(config, worker_index=0)
        return 0

    context = multiprocessing.get_context("spawn")
    children = [
        context.Process(target=_worker_entry, args=(config, index), daemon=False)
        for index in range(config.workers)
    ]
    for child in children:
        child.start()

    def forward(signum, _frame) -> None:
        for child in children:
            if child.pid is not None and child.is_alive():
                os.kill(child.pid, signum)

    previous = {
        signum: signal.signal(signum, forward)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        for child in children:
            child.join()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    status = max((child.exitcode or 0) for child in children)
    if config.metrics_path:
        merge_worker_metrics(config)
    return status


def merge_worker_metrics(config: ServeConfig) -> Optional[MetricsSnapshot]:
    """Merge per-worker snapshot files into ``config.metrics_path``."""
    if not config.metrics_path:
        return None
    parts = []
    for index in range(config.workers):
        path = worker_metrics_path(config.metrics_path, index)
        if not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as stream:
            parts.append(MetricsSnapshot.from_payload(json.load(stream)))
    if not parts:
        return None
    merged = merge_snapshots(parts)
    with open(config.metrics_path, "w", encoding="utf-8") as stream:
        stream.write(merged.to_json(include_host=True) + "\n")
    return merged
