"""repro.serve — a live asyncio DNS frontend over the simulated stack.

`repro serve` binds a real UDP + TCP port, decodes wire-format queries
with the :mod:`repro.dns` codec, and answers from a
:class:`RecursiveResolver` whose cache fronts one of the canonical
simulated worlds, with wall time bridged onto the sim clock so TTLs age
for real.  The hot path batches datagram I/O (``recvmmsg``/``sendmmsg``
via :mod:`repro.serve.batchio`) and memoizes encoded responses for
repeat queries (:mod:`repro.serve.memo`).  See ``docs/serving.md``.
"""

from repro.serve.batchio import (
    DEFAULT_BATCH_SIZE,
    FallbackBatcher,
    MmsgBatcher,
    make_batcher,
    mmsg_available,
)
from repro.serve.bridge import WallClockBridge
from repro.serve.config import WORLD_BUILDERS, ServeConfig, build_frontend
from repro.serve.frontend import DnsFrontend, ServeResult, servfail_wire
from repro.serve.memo import DEFAULT_MEMO_CAPACITY, ResponseMemo
from repro.serve.server import ServeServer, run_server
from repro.serve.workers import install_event_loop, run_worker, run_workers

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MEMO_CAPACITY",
    "DnsFrontend",
    "FallbackBatcher",
    "MmsgBatcher",
    "ResponseMemo",
    "ServeConfig",
    "ServeResult",
    "ServeServer",
    "WORLD_BUILDERS",
    "WallClockBridge",
    "build_frontend",
    "install_event_loop",
    "make_batcher",
    "mmsg_available",
    "run_server",
    "run_worker",
    "run_workers",
    "servfail_wire",
]
