"""repro.serve — a live asyncio DNS frontend over the simulated stack.

`repro serve` binds a real UDP + TCP port, decodes wire-format queries
with the :mod:`repro.dns` codec, and answers from a
:class:`RecursiveResolver` whose cache fronts one of the canonical
simulated worlds, with wall time bridged onto the sim clock so TTLs age
for real.  See ``docs/serving.md``.
"""

from repro.serve.bridge import WallClockBridge
from repro.serve.config import WORLD_BUILDERS, ServeConfig, build_frontend
from repro.serve.frontend import DnsFrontend, ServeResult, servfail_wire
from repro.serve.server import ServeServer, run_server
from repro.serve.workers import run_worker, run_workers

__all__ = [
    "DnsFrontend",
    "ServeConfig",
    "ServeResult",
    "ServeServer",
    "WORLD_BUILDERS",
    "WallClockBridge",
    "build_frontend",
    "run_server",
    "run_worker",
    "run_workers",
    "servfail_wire",
]
