"""Wall-clock → sim-clock bridging.

The resolver, cache, and authoritative stack all live on a virtual
timeline: TTLs age, caches expire and SOA timers run against the ``now``
passed into every call.  To serve that stack live, the frontend maps the
host's monotonic clock onto the simulated one — a query arriving ``t``
wall seconds after startup resolves at sim time ``sim_start + t *
time_scale``, so a 300 s TTL record really is gone after five minutes of
wall time (or after 3 s with ``time_scale=100``, which is how the tests
exercise expiry without sleeping).
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class WallClockBridge:
    """Maps monotonic wall time onto the simulated timeline.

    ``wall_clock`` is injectable so tests can drive sim time by hand;
    production uses :func:`time.monotonic`, which never steps backwards
    (NTP slews and daylight-saving jumps must not un-expire cache
    entries).
    """

    def __init__(
        self,
        sim_start: float = 0.0,
        time_scale: float = 1.0,
        wall_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time scale must be positive, not {time_scale}")
        if sim_start < 0:
            raise ValueError(f"sim epoch cannot be negative ({sim_start})")
        self.sim_start = float(sim_start)
        self.time_scale = float(time_scale)
        self._wall_clock = wall_clock if wall_clock is not None else time.monotonic
        self._wall_epoch = self._wall_clock()
        # The sim clock must never run backwards even if the injected wall
        # clock misbehaves; remember the high-water mark.
        self._high_water = self.sim_start

    def now(self) -> float:
        """Current position on the simulated timeline."""
        elapsed = self._wall_clock() - self._wall_epoch
        sim_now = self.sim_start + elapsed * self.time_scale
        if sim_now > self._high_water:
            self._high_water = sim_now
        return self._high_water

    def wall_elapsed(self) -> float:
        """Wall seconds since the bridge was created."""
        return self._wall_clock() - self._wall_epoch
