"""Batched UDP datagram I/O: ``recvmmsg``/``sendmmsg`` with a fallback.

CPython's :mod:`socket` exposes ``recvmsg``/``sendmsg`` but not the
Linux batch variants, so the hot-path win of draining a burst in one
syscall is normally out of reach.  :class:`MmsgBatcher` binds
``recvmmsg(2)``/``sendmmsg(2)`` through :mod:`ctypes` with preallocated
buffer rings (message headers, iovecs, receive buffers, and sockaddr
scratch are built once and reused on every call), so a 32-datagram burst
costs one syscall and zero per-datagram allocations on the C side.
:class:`FallbackBatcher` presents the identical interface over plain
``recvfrom``/``sendto`` loops for platforms without the syscalls — the
two are byte-equivalent by construction and by test
(``tests/serve/test_batch_io.py``), so the serving loop never needs to
know which one it got.

Use :func:`make_batcher` to pick the best implementation for a socket.
"""

from __future__ import annotations

import ctypes
import errno
import socket
import struct
import sys
from typing import Optional

#: Default datagrams drained (or flushed) per syscall.
DEFAULT_BATCH_SIZE = 32

#: Largest datagram one slot accepts (EDNS can advertise up to 64 KiB).
RECV_BUFFER_SIZE = 0xFFFF

#: Scratch large enough for sockaddr_in and sockaddr_in6.
_SOCKADDR_SIZE = 28

#: Bound on the per-batcher sockaddr parse/pack caches.
_ADDR_CACHE_LIMIT = 4096

Datagram = tuple[bytes, tuple]


class _IoVec(ctypes.Structure):
    _fields_ = [("iov_base", ctypes.c_void_p), ("iov_len", ctypes.c_size_t)]


class _MsgHdr(ctypes.Structure):
    # The glibc/musl layout on Linux; ctypes inserts the arch padding.
    _fields_ = [
        ("msg_name", ctypes.c_void_p),
        ("msg_namelen", ctypes.c_uint),
        ("msg_iov", ctypes.POINTER(_IoVec)),
        ("msg_iovlen", ctypes.c_size_t),
        ("msg_control", ctypes.c_void_p),
        ("msg_controllen", ctypes.c_size_t),
        ("msg_flags", ctypes.c_int),
    ]


class _MMsgHdr(ctypes.Structure):
    _fields_ = [("msg_hdr", _MsgHdr), ("msg_len", ctypes.c_uint)]


def _load_mmsg_symbols():
    """The (recvmmsg, sendmmsg) pair, or ``None`` when unavailable."""
    if sys.platform != "linux":
        return None
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        recvmmsg = libc.recvmmsg
        sendmmsg = libc.sendmmsg
    except (OSError, AttributeError):
        return None
    for fn in (recvmmsg, sendmmsg):
        fn.restype = ctypes.c_int
    recvmmsg.argtypes = [
        ctypes.c_int,
        ctypes.POINTER(_MMsgHdr),
        ctypes.c_uint,
        ctypes.c_int,
        ctypes.c_void_p,
    ]
    sendmmsg.argtypes = [
        ctypes.c_int,
        ctypes.POINTER(_MMsgHdr),
        ctypes.c_uint,
        ctypes.c_int,
    ]
    return recvmmsg, sendmmsg


_MMSG_SYMBOLS = _load_mmsg_symbols()

#: Errnos that mean "no more datagrams right now", not "broken socket".
_SOFT_ERRNOS = frozenset({errno.EAGAIN, errno.EWOULDBLOCK, errno.EINTR})


def _parse_sockaddr(raw: bytes, length: int) -> tuple:
    """Decode a kernel-written sockaddr into the (host, port) tuple shape
    :meth:`socket.socket.recvfrom` produces."""
    if length >= 8:
        (family,) = struct.unpack_from("H", raw)  # sa_family_t, host order
        if family == socket.AF_INET:
            port, packed = struct.unpack_from(">H4s", raw, 2)
            return (socket.inet_ntop(socket.AF_INET, packed), port)
        if family == socket.AF_INET6 and length >= 28:
            port, flowinfo, packed, scope = struct.unpack_from(">HI16sI", raw, 2)
            return (socket.inet_ntop(socket.AF_INET6, packed), port, flowinfo, scope)
    return ("?", 0)


def _pack_sockaddr(addr: tuple, out: ctypes.Array) -> int:
    """Fill ``out`` with a sockaddr for ``addr``; returns its length."""
    host, port = addr[0], addr[1]
    if ":" in host:
        struct.pack_into("H", out, 0, socket.AF_INET6)  # sa_family_t, host order
        struct.pack_into(
            ">HI16sI",
            out,
            2,
            port,
            addr[2] if len(addr) > 2 else 0,
            socket.inet_pton(socket.AF_INET6, host),
            addr[3] if len(addr) > 3 else 0,
        )
        return 28
    struct.pack_into("H", out, 0, socket.AF_INET)  # sa_family_t, host order
    struct.pack_into(">H4s8s", out, 2, port, socket.inet_pton(socket.AF_INET, host), b"\x00" * 8)
    return 16


class MmsgBatcher:
    """recvmmsg/sendmmsg over preallocated rings; Linux only."""

    kind = "mmsg"

    def __init__(self, sock: socket.socket, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if _MMSG_SYMBOLS is None:
            raise OSError("recvmmsg/sendmmsg unavailable on this platform")
        if batch_size < 1:
            raise ValueError(f"batch size must be positive, not {batch_size}")
        self.sock = sock
        self.batch_size = batch_size
        self._fd = sock.fileno()
        self._recvmmsg, self._sendmmsg = _MMSG_SYMBOLS
        # Every per-datagram touch of ctypes machinery (attribute
        # descriptors, Array indexing, string_at) is an FFI-priced call —
        # expensive enough to eat the batching win.  So the rings are
        # bytearray-backed (payload/addr extraction is plain slicing) and
        # the header arrays are read and written through struct over a
        # memoryview; the only ctypes call per batch is the syscall.
        hdr_stride = ctypes.sizeof(_MMsgHdr)
        len_offset = _MMsgHdr.msg_len.offset
        self._namelen_offset = _MsgHdr.msg_namelen.offset
        self._u32 = struct.Struct("@I")
        self._size_t = struct.Struct("@N")
        # One unpack per received datagram: msg_namelen and msg_len in a
        # single read (the pad covers the msghdr fields between them).
        pad = len_offset - self._namelen_offset - 4
        self._namelen_and_len = struct.Struct(f"@I{pad}xI")
        iov_stride = ctypes.sizeof(_IoVec)
        iov_len_offset = _IoVec.iov_len.offset

        def build_ring():
            """One direction's ring: buffers, iovecs, headers, views."""
            data = [bytearray(RECV_BUFFER_SIZE) for _ in range(batch_size)]
            addrs = [bytearray(_SOCKADDR_SIZE) for _ in range(batch_size)]
            iovs = (_IoVec * batch_size)()
            hdrs = (_MMsgHdr * batch_size)()
            # from_buffer pins each bytearray (resize is forbidden while
            # exported, slice-assign is fine) and gives the kernel-visible
            # address; the arrays hold the only reference it needs.
            pins = []
            for index in range(batch_size):
                data_pin = (ctypes.c_char * RECV_BUFFER_SIZE).from_buffer(data[index])
                addr_pin = (ctypes.c_char * _SOCKADDR_SIZE).from_buffer(addrs[index])
                pins.append((data_pin, addr_pin))
                iov = iovs[index]
                iov.iov_base = ctypes.addressof(data_pin)
                iov.iov_len = RECV_BUFFER_SIZE
                hdr = hdrs[index].msg_hdr
                hdr.msg_name = ctypes.addressof(addr_pin)
                hdr.msg_namelen = _SOCKADDR_SIZE
                hdr.msg_iov = ctypes.pointer(iov)
                hdr.msg_iovlen = 1
            hdr_view = memoryview(hdrs).cast("B")
            iov_view = memoryview(iovs).cast("B")
            hdr_offsets = [index * hdr_stride for index in range(batch_size)]
            iov_offsets = [
                index * iov_stride + iov_len_offset for index in range(batch_size)
            ]
            data_views = [memoryview(buf) for buf in data]
            addr_views = [memoryview(buf) for buf in addrs]
            return (
                data, addrs, data_views, addr_views, hdrs, hdr_view, iov_view,
                hdr_offsets, iov_offsets, pins,
            )

        (
            self._recv_data,
            self._recv_addr,
            self._recv_data_views,
            self._recv_addr_views,
            self._recv_hdrs,
            self._recv_hdr_view,
            _,
            self._recv_offsets,
            _,
            self._recv_pins,
        ) = build_ring()
        (
            self._send_data,
            self._send_addr,
            _,
            _,
            self._send_hdrs,
            self._send_hdr_view,
            self._send_iov_view,
            self._send_offsets,
            self._send_iov_offsets,
            self._send_pins,
        ) = build_ring()
        # Per-slot change tracking on the send side: a slot that already
        # holds the right sockaddr (identity — the raw cache interns
        # them) or iov_len skips the rewrite entirely.
        self._send_slot_raw: list = [None] * batch_size
        self._send_slot_len: list = [-1] * batch_size
        # Raw-sockaddr <-> addr-tuple caches.  A server talks to a bounded
        # client set per batcher lifetime, so parsing/packing each peer
        # once and dict-probing thereafter keeps the per-datagram Python
        # cost at one lookup instead of struct+inet_ntop work.
        self._addr_by_raw: dict[bytes, tuple] = {}
        self._raw_by_addr: dict[tuple, bytes] = {}

    def recv_batch(self) -> list[Datagram]:
        """Up to ``batch_size`` datagrams in one syscall; ``[]`` when the
        kernel buffer is empty."""
        count = self._recvmmsg(self._fd, self._recv_hdrs, self.batch_size, 0, None)
        if count < 0:
            if ctypes.get_errno() in _SOFT_ERRNOS:
                return []
            raise OSError(ctypes.get_errno(), "recvmmsg failed")
        out: list[Datagram] = []
        addr_by_raw = self._addr_by_raw
        view = self._recv_hdr_view
        offsets = self._recv_offsets
        unpack_pair = self._namelen_and_len.unpack_from
        namelen_offset = self._namelen_offset
        data_views = self._recv_data_views
        addr_views = self._recv_addr_views
        for index in range(count):
            namelen, length = unpack_pair(view, offsets[index] + namelen_offset)
            raw = bytes(addr_views[index][:namelen])
            addr = addr_by_raw.get(raw)
            if addr is None:
                addr = _parse_sockaddr(raw, namelen)
                if len(addr_by_raw) < _ADDR_CACHE_LIMIT:
                    addr_by_raw[raw] = addr
            out.append((bytes(data_views[index][:length]), addr))
        # msg_namelen is in/out, but a socket's address family never
        # changes, so the kernel-written length from this call is exactly
        # the scratch size the next call needs — no per-slot reset.
        return out

    def send_batch(self, items: list[Datagram]) -> int:
        """Flush ``items`` in ``batch_size`` chunks; returns datagrams sent.

        UDP responses are best-effort (matching the single-datagram
        ``sendto`` path): kernel backpressure mid-batch drops the
        remainder instead of blocking the event loop.
        """
        sent = 0
        raw_by_addr = self._raw_by_addr
        hdr_view = self._send_hdr_view
        iov_view = self._send_iov_view
        offsets = self._send_offsets
        iov_offsets = self._send_iov_offsets
        pack_u32 = self._u32.pack_into
        pack_size_t = self._size_t.pack_into
        namelen_offset = self._namelen_offset
        send_data = self._send_data
        send_addr = self._send_addr
        slot_raw = self._send_slot_raw
        slot_len = self._send_slot_len
        for start in range(0, len(items), self.batch_size):
            chunk = items[start : start + self.batch_size]
            for index, (payload, addr) in enumerate(chunk):
                # Copy the payload into the slot's fixed buffer; iov_base
                # was pointed there once at construction.
                length = len(payload)
                send_data[index][:length] = payload
                if length != slot_len[index]:
                    slot_len[index] = length
                    pack_size_t(iov_view, iov_offsets[index], length)
                raw = raw_by_addr.get(addr)
                if raw is None:
                    scratch = bytearray(_SOCKADDR_SIZE)
                    raw = bytes(scratch[: _pack_sockaddr(addr, scratch)])
                    if len(raw_by_addr) < _ADDR_CACHE_LIMIT:
                        raw_by_addr[addr] = raw
                if raw is not slot_raw[index]:
                    slot_raw[index] = raw
                    send_addr[index][: len(raw)] = raw
                    pack_u32(hdr_view, offsets[index] + namelen_offset, len(raw))
            count = self._sendmmsg(self._fd, self._send_hdrs, len(chunk), 0)
            if count < 0:
                if ctypes.get_errno() in _SOFT_ERRNOS:
                    return sent
                return sent  # best-effort: a dead socket drops the batch
            sent += count
            if count < len(chunk):
                return sent
        return sent


class FallbackBatcher:
    """The same interface over one-datagram syscalls; works everywhere."""

    kind = "fallback"

    def __init__(self, sock: socket.socket, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be positive, not {batch_size}")
        self.sock = sock
        self.batch_size = batch_size

    def recv_batch(self) -> list[Datagram]:
        out: list[Datagram] = []
        recvfrom = self.sock.recvfrom
        for _ in range(self.batch_size):
            try:
                out.append(recvfrom(RECV_BUFFER_SIZE))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                break
        return out

    def send_batch(self, items: list[Datagram]) -> int:
        sent = 0
        sendto = self.sock.sendto
        for payload, addr in items:
            try:
                sendto(payload, addr)
            except (BlockingIOError, InterruptedError):
                return sent  # kernel backpressure: drop the rest
            except OSError:
                return sent
            sent += 1
        return sent


def mmsg_available() -> bool:
    """True when the Linux batch syscalls can be bound."""
    return _MMSG_SYMBOLS is not None


def make_batcher(
    sock: socket.socket,
    batch_size: int = DEFAULT_BATCH_SIZE,
    prefer_mmsg: Optional[bool] = None,
):
    """The best batcher for ``sock``: mmsg where possible, else fallback.

    ``prefer_mmsg=False`` forces the portable path (the CI equivalence
    job and the `--no-batch` flag); ``None`` auto-detects.  A batch size
    of 1 always uses the fallback — one datagram per syscall *is* the
    unbatched path, so ``--batch 1`` degenerates cleanly.
    """
    use_mmsg = mmsg_available() if prefer_mmsg is None else (prefer_mmsg and mmsg_available())
    if use_mmsg and batch_size > 1:
        return MmsgBatcher(sock, batch_size)
    return FallbackBatcher(sock, batch_size)
