"""Crawl aggregations: the Table 5/8/9 and Figure 9 computations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.cdf import ECDF
from repro.crawler.crawl import CrawlResult

RECORD_TYPES = ("NS", "A", "AAAA", "MX", "DNSKEY", "CNAME")


@dataclass
class ListRecordCounts:
    """One list's Table 5 block."""

    list_name: str
    domains: int
    responsive: int
    discarded: int
    #: rtype -> (total records, unique rdata values).
    counts: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        return self.responsive / self.domains if self.domains else 0.0

    def unique_ratio(self, rtype: str) -> Optional[float]:
        total, unique = self.counts.get(rtype, (0, 0))
        if unique == 0:
            return None
        return total / unique


def record_counts(crawl: CrawlResult) -> dict[str, ListRecordCounts]:
    """Table 5: dataset sizes and per-record-type counts."""
    out: dict[str, ListRecordCounts] = {}
    for list_name in crawl.list_names():
        records = crawl.for_list(list_name)
        responsive = [record for record in records if record.responsive]
        block = ListRecordCounts(
            list_name=list_name,
            domains=len(records),
            responsive=len(responsive),
            discarded=len(records) - len(responsive),
        )
        for rtype in RECORD_TYPES:
            total = 0
            unique: set[str] = set()
            for record in responsive:
                values = record.values(rtype)
                total += len(values)
                unique.update(values)
            if total:
                block.counts[rtype] = (total, len(unique))
        out[list_name] = block
    return out


def ttl_cdf_by_type(crawl: CrawlResult) -> dict[str, dict[str, ECDF]]:
    """Figure 9: per-list, per-record-type TTL CDFs (child-side answers)."""
    out: dict[str, dict[str, ECDF]] = {}
    for list_name in crawl.list_names():
        per_type: dict[str, ECDF] = {}
        for rtype in RECORD_TYPES:
            ttls = [
                ttl
                for record in crawl.for_list(list_name)
                if record.responsive
                for ttl in record.ttls(rtype)
            ]
            if ttls:
                per_type[rtype] = ECDF(ttls)
        out[list_name] = per_type
    return out


def ttl_zero_census(crawl: CrawlResult) -> dict[str, dict[str, int]]:
    """Table 8: domains with TTL=0, per list and record type."""
    out: dict[str, dict[str, int]] = {}
    for list_name in crawl.list_names():
        per_type: dict[str, int] = {rtype: 0 for rtype in RECORD_TYPES[:-1]}
        unique_domains: set[str] = set()
        for record in crawl.for_list(list_name):
            zero_types = [
                rtype
                for rtype in RECORD_TYPES[:-1]
                if any(ttl == 0 for ttl in record.ttls(rtype))
            ]
            for rtype in zero_types:
                per_type[rtype] += 1
            if zero_types:
                unique_domains.add(str(record.domain.name))
        per_type["unique"] = len(unique_domains)
        out[list_name] = per_type
    return out


@dataclass
class ParentChildComparison:
    """Child NS TTL relative to the parent's delegation TTL, per list.

    The paper calls the full comparison future work, noting only that
    "the TTL of .nl is 1 hour, so about 40 % of .nl children have shorter
    TTLs" (§5.1).  We have both sides for every crawled delegation.
    """

    list_name: str
    compared: int = 0
    child_shorter: int = 0
    child_equal: int = 0
    child_longer: int = 0

    def fraction(self, count: int) -> float:
        return count / self.compared if self.compared else 0.0

    @property
    def shorter_fraction(self) -> float:
        return self.fraction(self.child_shorter)

    @property
    def longer_fraction(self) -> float:
        return self.fraction(self.child_longer)


def parent_child_comparison(crawl: CrawlResult) -> dict[str, ParentChildComparison]:
    """The paper's future-work measurement: who configured the shorter TTL?

    Uses each delegation's parent-side NS TTL (from the referral) and the
    child's authoritative NS TTL.  Only NS-answering domains compare.
    """
    out: dict[str, ParentChildComparison] = {}
    for list_name in crawl.list_names():
        comparison = ParentChildComparison(list_name=list_name)
        for record in crawl.for_list(list_name):
            if record.parent_ns_ttl is None or record.ns_response != "ns":
                continue
            child_ttls = record.ttls("NS")
            if not child_ttls:
                continue
            comparison.compared += 1
            child_ttl = child_ttls[0]
            if child_ttl < record.parent_ns_ttl:
                comparison.child_shorter += 1
            elif child_ttl == record.parent_ns_ttl:
                comparison.child_equal += 1
            else:
                comparison.child_longer += 1
        out[list_name] = comparison
    return out


@dataclass
class BailiwickCensus:
    """One list's Table 9 block."""

    list_name: str
    responsive: int = 0
    cname: int = 0
    soa: int = 0
    respond_ns: int = 0
    out_only: int = 0
    in_only: int = 0
    mixed: int = 0

    @property
    def percent_out(self) -> float:
        return 100.0 * self.out_only / self.respond_ns if self.respond_ns else 0.0


def bailiwick_census(crawl: CrawlResult) -> dict[str, BailiwickCensus]:
    """Table 9: bailiwick configuration in the wild."""
    out: dict[str, BailiwickCensus] = {}
    for list_name in crawl.list_names():
        census = BailiwickCensus(list_name=list_name)
        for record in crawl.for_list(list_name):
            if not record.responsive:
                continue
            census.responsive += 1
            if record.ns_response == "cname":
                census.cname += 1
            elif record.ns_response == "soa":
                census.soa += 1
            elif record.ns_response == "ns":
                census.respond_ns += 1
                if record.bailiwick == "out":
                    census.out_only += 1
                elif record.bailiwick == "in":
                    census.in_only += 1
                elif record.bailiwick == "mixed":
                    census.mixed += 1
        out[list_name] = census
    return out
