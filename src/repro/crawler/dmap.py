"""DMap-style content classification (paper §5.1.1, Tables 6 and 7).

The paper's DMap crawls HTTP and classifies .nl domains into content
categories (placeholder / e-commerce / parking); Table 7 then reports
median DNS TTLs per category.  Our synthetic .nl population carries
ground-truth categories (assigned at generation, as an HTTP crawl would
discover them); this module joins those labels with the DNS crawl data and
computes the same tables.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import Optional

from repro.crawler.crawl import CrawlRecord, CrawlResult


class ContentCategory(enum.Enum):
    PLACEHOLDER = "placeholder"
    ECOMMERCE = "ecommerce"
    PARKING = "parking"


#: Human-readable blurbs matching Table 6's "Meaning" column.
CATEGORY_MEANING = {
    ContentCategory.PLACEHOLDER: "Landing page",
    ContentCategory.ECOMMERCE: "Shop cart presence",
    ContentCategory.PARKING: "Parked domain",
}


@dataclass
class DMapReport:
    """Tables 6 and 7 for one crawl."""

    category_counts: dict[ContentCategory, int] = field(default_factory=dict)
    #: Median TTL in hours per (category, record type) — Table 7.
    median_ttl_hours: dict[ContentCategory, dict[str, float]] = field(
        default_factory=dict
    )

    @property
    def total_classified(self) -> int:
        return sum(self.category_counts.values())


def dmap_classify(
    crawl: CrawlResult, list_name: str = ".nl"
) -> DMapReport:
    """Classify a crawl's .nl records and compute per-category TTL medians.

    Domains that redirect (CNAME) are excluded, as in the paper ("we only
    consider domains that do not redirect to other domains").
    """
    report = DMapReport()
    per_category: dict[ContentCategory, list[CrawlRecord]] = {
        category: [] for category in ContentCategory
    }
    for record in crawl.for_list(list_name):
        category = _category_of(record)
        if category is None:
            continue
        if record.ns_response == "cname" or record.values("CNAME"):
            continue
        if not record.responsive or not record.ttls("A"):
            continue
        per_category[category].append(record)

    for category, records in per_category.items():
        report.category_counts[category] = len(records)
        medians: dict[str, float] = {}
        for rtype in ("NS", "A", "AAAA", "MX", "DNSKEY"):
            ttls = [ttl for record in records for ttl in record.ttls(rtype)]
            if ttls:
                medians[rtype] = statistics.median(ttls) / 3600.0
        report.median_ttl_hours[category] = medians
    return report


def _category_of(record: CrawlRecord) -> Optional[ContentCategory]:
    label = record.domain.category
    if label is None:
        return None
    try:
        return ContentCategory(label)
    except ValueError:
        return None
