"""The TTL crawler (paper §5.1 methodology).

For each list entry the crawler:

1. queries the *parent* authoritative server for the entry's NS records,
   recording the delegation's parent-side TTLs and glue;
2. queries the *child* authoritative servers directly (no shared
   recursive resolvers) for NS, A, AAAA, MX and DNSKEY records, recording
   the child-side TTLs the operator intends;
3. classifies the NS response (NS answer / CNAME / SOA) and the observed
   bailiwick configuration.

The child server address comes from glue when present, else from an
out-of-band hosts table (as the paper's crawler resolved server names
before querying children directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from repro.metrics.snapshot import MetricsSnapshot

from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import NS, RdataType
from repro.crawler.toplists import CrawlUniverse, GeneratedDomain
from repro.net.topology import Region
from repro.net.transport import NetworkTimeout

#: The record types crawled at the child (Table 5's rows).
CHILD_RECORD_TYPES = (
    RdataType.NS,
    RdataType.A,
    RdataType.AAAA,
    RdataType.MX,
    RdataType.DNSKEY,
)


@dataclass
class CrawlRecord:
    """Everything the crawler learned about one list entry."""

    domain: GeneratedDomain
    responsive: bool = False
    #: NS-query response class: "ns", "cname", "soa", or "none".
    ns_response: str = "none"
    #: Parent-side data.
    parent_ns_ttl: Optional[int] = None
    parent_glue_ttls: list[int] = field(default_factory=list)
    #: Child-side records: rtype name -> list of (ttl, rdata text).
    records: dict[str, list[tuple[int, str]]] = field(default_factory=dict)
    #: Observed bailiwick class ("out", "in", "mixed"), NS responders only.
    bailiwick: Optional[str] = None

    @property
    def list_name(self) -> str:
        return self.domain.list_name

    def ttls(self, rtype: str) -> list[int]:
        return [ttl for ttl, _ in self.records.get(rtype, [])]

    def values(self, rtype: str) -> list[str]:
        return [value for _, value in self.records.get(rtype, [])]


@dataclass
class CrawlResult:
    """All records of one crawl, grouped by list."""

    records: list[CrawlRecord]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def for_list(self, list_name: str) -> list[CrawlRecord]:
        return [record for record in self.records if record.list_name == list_name]

    def list_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.list_name)
        return list(seen)


class Crawler:
    """Crawls a :class:`CrawlUniverse` from a single measurement host."""

    def __init__(self, universe: CrawlUniverse, timeout: float = 1.0) -> None:
        self.universe = universe
        # The paper measures from EC2 Frankfurt; one EU endpoint suffices.
        self.endpoint = universe.topology.endpoint_in_region(
            Region.EU, name="crawler"
        )
        self.timeout = timeout
        self.queries_sent = 0

    # -- plumbing -----------------------------------------------------------
    def _ask(
        self, address: str, qname: Name | str, qtype: RdataType, now: float = 0.0
    ) -> Optional[Message]:
        query = Message.make_query(qname, qtype, recursion_desired=False)
        self.queries_sent += 1
        try:
            response, _ = self.universe.network.exchange(
                self.endpoint, address, query, now, timeout=self.timeout, retries=0
            )
        except NetworkTimeout:
            return None
        return response

    def _parent_address(self, domain: GeneratedDomain) -> Optional[str]:
        if domain.format == "TLD":
            return self.universe.root_server_address
        tld = domain.parent.labels[0]
        return self.universe.tld_server_addresses.get(tld)

    def _child_addresses(
        self, domain: GeneratedDomain, referral: Optional[Message]
    ) -> list[str]:
        addresses: list[str] = []
        ns_targets: list[Name] = []
        if referral is not None:
            for record in referral.section(Section.AUTHORITY):
                if record.rdtype == RdataType.NS:
                    rdata = record.rdata
                    assert isinstance(rdata, NS)
                    ns_targets.append(rdata.target)
            for record in referral.section(Section.ADDITIONAL):
                if record.rdtype == RdataType.A:
                    addresses.append(str(record.rdata))
        for target in ns_targets:
            known = self.universe.host_addresses.get(target)
            if known is not None and known not in addresses:
                addresses.append(known)
        return addresses

    # -- crawling -------------------------------------------------------------
    def crawl_domain(self, domain: GeneratedDomain) -> CrawlRecord:
        record = CrawlRecord(domain=domain)

        parent_address = self._parent_address(domain)
        referral = (
            self._ask(parent_address, domain.name, RdataType.NS)
            if parent_address is not None
            else None
        )
        if referral is not None:
            # Parent-side NS TTL: the delegation in the authority section
            # (or, for a TLD queried at the root, possibly an answer).
            for section in (Section.AUTHORITY, Section.ANSWER):
                for rr in referral.section(section):
                    if rr.rdtype == RdataType.NS:
                        record.parent_ns_ttl = rr.ttl
                        break
                if record.parent_ns_ttl is not None:
                    break
            record.parent_glue_ttls = [
                rr.ttl
                for rr in referral.section(Section.ADDITIONAL)
                if rr.rdtype in (RdataType.A, RdataType.AAAA)
            ]

        child_addresses = self._child_addresses(domain, referral)
        if not child_addresses:
            return record  # unresponsive: never delegated or servers unknown

        child = child_addresses[0]
        responded = False
        for qtype in CHILD_RECORD_TYPES:
            response = self._ask(child, domain.name, qtype)
            if response is None:
                continue
            responded = True
            answers = response.section(Section.ANSWER)
            if qtype == RdataType.NS:
                record.ns_response = self._classify_ns_response(response)
            for rr in answers:
                entry = (rr.ttl, rr.rdata.to_text())
                bucket = record.records.setdefault(rr.rdtype.name, [])
                # A CNAME chain repeats in every query type's answer;
                # count each record once per domain, as the paper's
                # per-domain record counts do.
                if entry not in bucket:
                    bucket.append(entry)
        record.responsive = responded
        if record.ns_response == "ns":
            record.bailiwick = self._classify_bailiwick(domain, record)
        return record

    def _classify_ns_response(self, response: Message) -> str:
        answers = response.section(Section.ANSWER)
        if any(rr.rdtype == RdataType.NS for rr in answers):
            return "ns"
        if any(rr.rdtype == RdataType.CNAME for rr in answers):
            return "cname"
        if response.rcode == Rcode.NOERROR and any(
            rr.rdtype == RdataType.SOA for rr in response.section(Section.AUTHORITY)
        ):
            return "soa"
        return "none"

    def _classify_bailiwick(
        self, domain: GeneratedDomain, record: CrawlRecord
    ) -> str:
        """Table 9's classification from the *observed* NS answer."""
        targets = [Name(value) for value in record.values("NS")]
        if not targets:
            return "out"
        # Only entries whose NS query returned an NS answer are classified,
        # and that answer's owner is the entry itself — so the entry is the
        # zone apex the bailiwick test is relative to.
        zone_origin = domain.name
        inside = [target.is_subdomain_of(zone_origin) for target in targets]
        if all(inside):
            return "in"
        if any(inside):
            return "mixed"
        return "out"

    def crawl(
        self, domains: Optional[Iterable[GeneratedDomain]] = None
    ) -> CrawlResult:
        targets = list(domains) if domains is not None else self.universe.domains
        return CrawlResult([self.crawl_domain(domain) for domain in targets])


def crawl_parallel(
    scale: float = 0.01,
    seed: int = 0,
    lists: Optional[list[str]] = None,
    parallelism: int = 1,
    shards: Optional[int] = None,
    run_dir: Optional[str] = None,
    progress=None,
    timeout: float = 1.0,
    profile: Optional[str] = None,
) -> tuple[CrawlResult, int, "MetricsSnapshot"]:
    """Run the crawl sharded over the list entries via :mod:`repro.runner`.

    Each worker rebuilds the universe from ``(scale, seed, lists)`` and
    crawls a contiguous slice of it; every domain's crawl is an
    independent direct query exchange, so the merged result equals the
    serial crawl record-for-record.  ``parallelism=1`` uses the serial
    in-process fallback; ``run_dir`` enables checkpoint/resume.  Returns
    ``(result, total_queries_sent, metrics)`` where ``metrics`` merges
    the shards' sim-domain snapshots with the executor's host telemetry.
    """
    from repro.crawler.toplists import planned_list_sizes
    from repro.metrics.registry import MetricsRegistry
    from repro.runner.campaigns import campaign_fingerprint, crawl_shard
    from repro.runner.checkpoint import CheckpointStore
    from repro.runner.codec import decode_shard_payload
    from repro.runner.executor import ShardExecutor
    from repro.runner.merge import merge_crawl_results, merge_shard_metrics
    from repro.runner.progress import ProgressTracker
    from repro.runner.shard import DEFAULT_SHARDS, plan_shards

    total = sum(planned_list_sizes(scale, lists).values())
    num_shards = shards if shards is not None else DEFAULT_SHARDS
    kwargs = {"scale": scale, "seed": seed, "lists": lists, "timeout": timeout}
    fingerprint = campaign_fingerprint("crawl", shards=num_shards, **kwargs)
    checkpoint = (
        CheckpointStore(run_dir, fingerprint) if run_dir is not None else None
    )
    tracker = ProgressTracker(campaign="crawl", callback=progress)
    host_registry = MetricsRegistry()
    executor = ShardExecutor(
        parallelism=parallelism,
        checkpoint=checkpoint,
        tracker=tracker,
        metrics=host_registry,
        profile_path=profile,
    )
    outcomes = executor.run(crawl_shard, plan_shards(total, num_shards, seed), kwargs)
    for outcome in outcomes:
        outcome.value = decode_shard_payload(outcome.value)
    result, total_queries = merge_crawl_results(
        [outcome.value["results"] for outcome in outcomes],
        queries=[outcome.value["queries"] for outcome in outcomes],
    )
    metrics = merge_shard_metrics(
        [outcome.value for outcome in outcomes]
    ).merge(host_registry.snapshot())
    return result, total_queries, metrics
