"""Synthetic top-list generation (the crawl's measurement targets).

The paper crawls five lists (Table 5): Alexa and Majestic (1M 2LDs),
Umbrella (1M FQDNs, many CDN/cloud hosts), the .nl zone (5.6M 2LDs) and
the root (1562 TLDs).  Those lists are proprietary snapshots, so we
generate synthetic populations whose *distributions* match what the paper
reports:

- responsiveness ratios (Table 5's ``ratio`` row),
- TTL distributions per record type (Figure 9: human-chosen values, the
  root long-lived, Umbrella short-lived, NS/DNSKEY longest, A/AAAA
  shortest),
- hosting concentration (Table 5's unique-record ratios),
- bailiwick profile (Table 9: >90 % out-of-bailiwick-only for popular
  lists, ~49 % for the root),
- TTL=0 incidence (Table 8), and
- content categories for .nl (Tables 6 and 7).

Every domain is actually *hosted*: child zones are built and served by
simulated authoritative servers, and the TLD zones carry the delegations
and glue, so the crawler exercises the same query path the paper's does.
"""

from __future__ import annotations

import ipaddress
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.name import Name
from repro.dns.rdtypes import AAAA, A, CNAME, DNSKEY, MX, NS, RdataType
from repro.dns.zone import Zone
from repro.net.latency import LatencyModel
from repro.net.topology import Region, Topology
from repro.net.transport import LossModel, Network
from repro.server.authoritative import AuthoritativeServer

#: TTL buckets (value, weight) — "times reflect human-chosen values
#: (10 minutes and 1, 24, or 48 hours)" (§5.1).
TTLBuckets = list[tuple[int, float]]


@dataclass(frozen=True)
class TTLProfile:
    """Per-record-type TTL distributions for one list."""

    ns: TTLBuckets
    a: TTLBuckets
    aaaa: TTLBuckets
    mx: TTLBuckets
    dnskey: TTLBuckets
    cname: TTLBuckets
    #: Probability of a zero TTL, per record type (Table 8's incidence).
    ttl0: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ListProfile:
    """One top list's generation parameters."""

    name: str
    format: str  # "2LD", "FQDN", or "TLD"
    domains: int
    responsive_rate: float
    #: (out-only, in-only, mixed) weights among NS-responding domains.
    bailiwick: tuple[float, float, float]
    #: Among responsive FQDN-format entries: fraction answering NS queries
    #: with a CNAME / with NODATA-SOA (hosts rather than zone apexes).
    cname_rate: float
    soa_rate: float
    #: Record presence rates.
    aaaa_rate: float
    mx_rate: float
    dnskey_rate: float
    ttl: TTLProfile
    #: Hosting concentration: mean domains per provider (drives the
    #: unique-NS ratio of Table 5).
    domains_per_provider: float = 25.0
    #: Mean domains per web IP (drives the unique-A ratio).
    domains_per_address: float = 2.2
    tlds: tuple[str, ...] = ("com", "net", "org")


def _profile_alexa() -> ListProfile:
    return ListProfile(
        name="Alexa",
        format="2LD",
        domains=1_000_000,
        responsive_rate=0.99,
        bailiwick=(0.950, 0.040, 0.010),
        cname_rate=0.05,
        soa_rate=0.013,
        aaaa_rate=0.28,
        mx_rate=0.68,
        dnskey_rate=0.043,
        ttl=TTLProfile(
            ns=[(300, 0.04), (3600, 0.14), (7200, 0.06), (21600, 0.10),
                (86400, 0.42), (172800, 0.24)],
            a=[(60, 0.08), (300, 0.26), (600, 0.08), (3600, 0.34),
               (14400, 0.08), (86400, 0.16)],
            aaaa=[(60, 0.08), (300, 0.30), (3600, 0.36), (14400, 0.08), (86400, 0.18)],
            mx=[(300, 0.10), (3600, 0.42), (14400, 0.14), (86400, 0.34)],
            dnskey=[(3600, 0.30), (21600, 0.20), (86400, 0.40), (172800, 0.10)],
            cname=[(300, 0.45), (3600, 0.40), (86400, 0.15)],
            ttl0={"ns": 0.0046, "a": 0.0009, "aaaa": 0.0009, "mx": 0.0010, "dnskey": 0.0},
        ),
        domains_per_provider=9.2,
        domains_per_address=2.18,
    )


def _profile_majestic() -> ListProfile:
    return ListProfile(
        name="Majestic",
        format="2LD",
        domains=1_000_000,
        responsive_rate=0.93,
        bailiwick=(0.957, 0.031, 0.012),
        cname_rate=0.008,
        soa_rate=0.009,
        aaaa_rate=0.23,
        mx_rate=0.66,
        dnskey_rate=0.041,
        ttl=TTLProfile(
            ns=[(300, 0.03), (3600, 0.12), (21600, 0.10), (86400, 0.46), (172800, 0.29)],
            a=[(60, 0.06), (300, 0.22), (3600, 0.38), (14400, 0.10), (86400, 0.24)],
            aaaa=[(300, 0.28), (3600, 0.38), (86400, 0.34)],
            mx=[(300, 0.08), (3600, 0.40), (14400, 0.16), (86400, 0.36)],
            dnskey=[(3600, 0.28), (21600, 0.20), (86400, 0.42), (172800, 0.10)],
            cname=[(300, 0.40), (3600, 0.42), (86400, 0.18)],
            ttl0={"ns": 0.0045, "a": 0.0006, "aaaa": 0.0072, "mx": 0.0009, "dnskey": 0.0001},
        ),
        domains_per_provider=10.4,
        domains_per_address=1.98,
    )


def _profile_umbrella() -> ListProfile:
    return ListProfile(
        name="Umbrella",
        format="FQDN",
        domains=1_000_000,
        responsive_rate=0.78,
        bailiwick=(0.901, 0.074, 0.025),
        cname_rate=0.578,
        soa_rate=0.075,
        aaaa_rate=0.37,
        mx_rate=0.48,
        dnskey_rate=0.015,
        ttl=TTLProfile(
            # "25% of its domains with NS records are under 1 minute" —
            # transient cloud/CDN names (§5.1).
            ns=[(20, 0.12), (60, 0.14), (300, 0.16), (3600, 0.18),
                (86400, 0.26), (172800, 0.14)],
            a=[(20, 0.16), (60, 0.22), (300, 0.26), (3600, 0.22), (86400, 0.14)],
            aaaa=[(20, 0.14), (60, 0.22), (300, 0.28), (3600, 0.22), (86400, 0.14)],
            mx=[(300, 0.22), (3600, 0.42), (86400, 0.36)],
            dnskey=[(3600, 0.40), (86400, 0.50), (172800, 0.10)],
            cname=[(20, 0.14), (60, 0.20), (300, 0.34), (3600, 0.24), (86400, 0.08)],
            ttl0={"ns": 0.0017, "a": 0.0007, "aaaa": 0.0001, "mx": 0.0004, "dnskey": 0.0001},
        ),
        domains_per_provider=8.0,
        domains_per_address=2.50,
        tlds=("com", "net", "io"),
    )


def _profile_nl() -> ListProfile:
    return ListProfile(
        name=".nl",
        format="2LD",
        domains=5_582_431,
        responsive_rate=0.94,
        bailiwick=(0.997, 0.002, 0.001),
        cname_rate=0.002,
        soa_rate=0.002,
        aaaa_rate=0.39,
        mx_rate=0.71,
        dnskey_rate=0.66,  # .nl has very high DNSSEC deployment
        ttl=TTLProfile(
            # "about 40% of .nl children have shorter TTLs" than the 1-hour
            # parent (§5.1); weights chosen so the *overall* population
            # (including the category-driven domains of Tables 6/7, whose
            # NS TTLs are hours) lands at ~40 % below 3600 s.
            ns=[(300, 0.12), (900, 0.16), (1800, 0.27), (3600, 0.15),
                (14400, 0.15), (86400, 0.15)],
            a=[(300, 0.18), (900, 0.14), (3600, 0.44), (14400, 0.12), (86400, 0.12)],
            aaaa=[(300, 0.16), (3600, 0.48), (14400, 0.18), (86400, 0.18)],
            mx=[(300, 0.08), (3600, 0.52), (14400, 0.20), (86400, 0.20)],
            dnskey=[(3600, 0.42), (14400, 0.28), (86400, 0.30)],
            cname=[(300, 0.30), (3600, 0.55), (86400, 0.15)],
            ttl0={"ns": 0.0006, "a": 0.0001, "aaaa": 0.0000, "mx": 0.0000, "dnskey": 0.0},
        ),
        domains_per_provider=190.0,
        domains_per_address=19.6,
        tlds=("nl",),
    )


def _profile_root() -> ListProfile:
    return ListProfile(
        name="Root",
        format="TLD",
        domains=1562,
        responsive_rate=0.97,
        bailiwick=(0.487, 0.426, 0.087),
        cname_rate=0.0,
        soa_rate=0.0,
        aaaa_rate=0.90,
        mx_rate=0.06,
        dnskey_rate=0.0,
        ttl=TTLProfile(
            # "In the root, about 80% of records have TTLs of 1 or 2 days";
            # 34 TLDs < 30 min, 122 TLDs < 2 h among 1562 (§5.2).
            ns=[(30, 0.004), (300, 0.008), (480, 0.010), (3600, 0.056),
                (21600, 0.062), (86400, 0.42), (172800, 0.44)],
            a=[(300, 0.02), (3600, 0.08), (21600, 0.08), (86400, 0.42), (172800, 0.40)],
            aaaa=[(3600, 0.08), (21600, 0.08), (86400, 0.44), (172800, 0.40)],
            mx=[(3600, 0.30), (86400, 0.70)],
            dnskey=[(86400, 1.0)],
            cname=[(3600, 1.0)],
            ttl0={},
        ),
        domains_per_provider=3.0,
        domains_per_address=1.3,
        tlds=(),
    )


LIST_PROFILES: dict[str, ListProfile] = {
    "alexa": _profile_alexa(),
    "majestic": _profile_majestic(),
    "umbrella": _profile_umbrella(),
    "nl": _profile_nl(),
    "root": _profile_root(),
}


@dataclass
class GeneratedDomain:
    """One crawl target with ground-truth metadata."""

    name: Name
    list_name: str
    format: str
    responsive: bool
    #: "apex" (owns NS), "cname" (host aliased to a CDN), "host" (plain
    #: host inside a zone, NS query yields NODATA/SOA).
    kind: str
    bailiwick: str  # "out", "in", "mixed" (apex domains only)
    parent: Name  # the delegating zone origin
    ns_names: tuple[Name, ...] = ()
    #: DMap content category for .nl domains (Tables 6/7), else None.
    category: Optional[str] = None


@dataclass
class CrawlUniverse:
    """A hosted population of list domains plus the serving infrastructure."""

    seed: int
    network: Network
    topology: Topology
    tld_zones: dict[str, Zone]
    tld_server_addresses: dict[str, str]
    domains: list[GeneratedDomain]
    #: Ground-truth server addresses the crawler may consult in place of
    #: full recursion (the paper's crawler also resolved server names
    #: out-of-band before querying children directly).
    host_addresses: dict[Name, str]
    root_server_address: str = ""
    lists: dict[str, list[GeneratedDomain]] = field(default_factory=dict)

    def domains_for(self, list_name: str) -> list[GeneratedDomain]:
        return self.lists[list_name]

    # -- worldcache reuse ---------------------------------------------------
    def capture_baseline(self):
        """Topology mark for :meth:`restore_baseline` (crawl worldcache)."""
        return self.topology.mark()

    def restore_baseline(self, baseline, seed: int) -> None:
        """Reset runtime state so the universe can serve another shard.

        The crawl universe is identical in every shard (it is built from
        the campaign seed, not the shard seed), so the reset only drops
        per-shard runtime residue: the crawler's client endpoint rewinds
        off the topology, server query logs clear, and the fabric's RNG
        streams restart.
        """
        self.topology.reset_to(baseline, seed)
        self.network.reset_runtime(seed)


#: .nl content-category profile (Tables 6/7): share among classified
#: domains and the per-type TTLs that realize the table's medians (hours:
#: NS 4/24/4, A 1/1/1, AAAA 0.1/1/4, MX 1/1/1, DNSKEY 1/24/4).
NL_CATEGORY_SHARES = {
    "placeholder": 1199152 / 1475267,
    "ecommerce": 148564 / 1475267,
    "parking": 127551 / 1475267,
}

NL_CATEGORY_TTLS: dict[str, dict[str, int]] = {
    "ecommerce": {"ns": 14400, "a": 3600, "aaaa": 360, "mx": 3600, "dnskey": 3600},
    "parking": {"ns": 86400, "a": 3600, "aaaa": 3600, "mx": 3600, "dnskey": 86400},
    "placeholder": {"ns": 14400, "a": 3600, "aaaa": 14400, "mx": 3600, "dnskey": 14400},
}


class _UniverseBuilder:
    """Internal: builds one CrawlUniverse."""

    def __init__(self, scale: float, seed: int) -> None:
        self.scale = scale
        self.rng = random.Random(seed ^ 0xC4A31)
        self.seed = seed
        self.topology = Topology(seed=seed)
        self.network = Network(
            latency=LatencyModel(seed=seed), loss=LossModel(seed=seed), seed=seed
        )
        self.tld_zones: dict[str, Zone] = {}
        self.tld_server_addresses: dict[str, str] = {}
        self.host_addresses: dict[Name, str] = {}
        self._provider_servers: dict[str, AuthoritativeServer] = {}
        self._web_ip_pool: dict[str, list[str]] = {}
        self._next_ip = int(ipaddress.IPv4Address("172.16.0.1"))
        self._root_zone = Zone(Name(""), default_ttl=172800)
        self._root_zone.add_soa("a.root-servers.net.")
        root_server = self._add_server("a.root-servers.net", [self._root_zone])
        self._root_zone.add("", RdataType.NS, NS(Name("a.root-servers.net.")), ttl=518400)
        self.host_addresses[Name("a.root-servers.net.")] = root_server.endpoint.address
        self.root_server_address = root_server.endpoint.address

    # -- infrastructure helpers ------------------------------------------------
    def _add_server(
        self, name: str, zones: Optional[list[Zone]] = None
    ) -> AuthoritativeServer:
        region = self.rng.choice(list(Region))
        endpoint = self.topology.endpoint_in_region(region, name=name)
        server = AuthoritativeServer(endpoint, zones or [], log_queries=False)
        self.network.register(server)
        return server

    def _fresh_ip(self) -> str:
        ip = str(ipaddress.IPv4Address(self._next_ip))
        self._next_ip += 1
        return ip

    def ensure_tld(self, tld: str) -> Zone:
        zone = self.tld_zones.get(tld)
        if zone is not None:
            return zone
        # .nl delegates at one hour (the paper's §5.1 anchor for the
        # parent-vs-child comparison); generic TLDs at one day.
        delegation_ttl = 3600 if tld == "nl" else 86400
        zone = Zone(f"{tld}.", default_ttl=delegation_ttl)
        zone.add_soa(f"ns.registry-{tld}.net.")
        server = self._add_server(f"ns.registry-{tld}.net", [zone])
        zone.add(f"{tld}.", RdataType.NS, NS(Name(f"ns.registry-{tld}.net.")), ttl=86400)
        self._root_zone.add(f"{tld}.", RdataType.NS, NS(Name(f"ns.registry-{tld}.net.")), ttl=172800)
        self._root_zone.add(
            f"ns.registry-{tld}.net.", RdataType.A, A(server.endpoint.address), ttl=172800
        )
        self.tld_zones[tld] = zone
        self.tld_server_addresses[tld] = server.endpoint.address
        self.host_addresses[Name(f"ns.registry-{tld}.net.")] = server.endpoint.address
        return zone

    def provider(self, list_name: str, index: int) -> tuple[list[Name], AuthoritativeServer]:
        """A shared hosting provider: 2 NS names + a serving machine."""
        key = f"{list_name}-{index}"
        server = self._provider_servers.get(key)
        ns_names = [
            Name(f"ns{n}.{key}.hosting.net.") for n in (1, 2)
        ]
        if server is None:
            server = self._add_server(f"{key}.hosting.net")
            self._provider_servers[key] = server
            for ns_name in ns_names:
                self.host_addresses[ns_name] = server.endpoint.address
        return ns_names, server

    def pick_ttl(self, buckets: TTLBuckets, ttl0_prob: float) -> int:
        if ttl0_prob and self.rng.random() < ttl0_prob:
            return 0
        values = [value for value, _ in buckets]
        weights = [weight for _, weight in buckets]
        return self.rng.choices(values, weights=weights, k=1)[0]

    def web_ip(self, list_name: str, domains_per_address: float) -> str:
        """Shared web-hosting addresses sized to the unique-A ratio."""
        pool = self._web_ip_pool.setdefault(list_name, [])
        if not pool or self.rng.random() < 1.0 / domains_per_address:
            pool.append(self._fresh_ip())
        return self.rng.choice(pool)


def planned_list_sizes(
    scale: float, lists: Optional[list[str]] = None
) -> dict[str, int]:
    """Domains each list will contain at ``scale`` — *without* building
    the universe.  Sharded crawls use this to plan shards cheaply; the
    builder below uses the same numbers, so plans always match."""
    wanted = lists or list(LIST_PROFILES)
    sizes: dict[str, int] = {}
    for list_name in wanted:
        profile = LIST_PROFILES[list_name]
        if profile.format == "TLD":
            sizes[list_name] = max(30, int(profile.domains * max(scale, 0.1)))
        else:
            sizes[list_name] = max(50, int(profile.domains * scale))
    return sizes


def build_crawl_universe(
    scale: float = 0.01,
    seed: int = 0,
    lists: Optional[list[str]] = None,
) -> CrawlUniverse:
    """Generate and host the five lists at ``scale`` times paper size.

    ``scale=0.01`` gives 10k domains per million-entry list; the root list
    is scaled by ``max(scale, 0.1)`` so it keeps enough TLDs to be
    meaningful.
    """
    builder = _UniverseBuilder(scale, seed)
    universe_lists: dict[str, list[GeneratedDomain]] = {}
    for list_name, count in planned_list_sizes(scale, lists).items():
        profile = LIST_PROFILES[list_name]
        if profile.format == "TLD":
            generated = _generate_root_list(builder, profile, count)
        else:
            generated = _generate_sld_list(builder, profile, count, list_name)
        universe_lists[list_name] = generated

    domains = [domain for generated in universe_lists.values() for domain in generated]
    return CrawlUniverse(
        seed=seed,
        network=builder.network,
        topology=builder.topology,
        tld_zones=builder.tld_zones,
        tld_server_addresses=builder.tld_server_addresses,
        domains=domains,
        host_addresses=builder.host_addresses,
        root_server_address=builder.root_server_address,
        lists=universe_lists,
    )


def _generate_sld_list(
    builder: _UniverseBuilder, profile: ListProfile, count: int, list_name: str
) -> list[GeneratedDomain]:
    rng = builder.rng
    generated: list[GeneratedDomain] = []
    provider_count = max(2, int(count / profile.domains_per_provider))
    ttl0 = profile.ttl.ttl0

    nl_categories = list(NL_CATEGORY_SHARES)
    nl_weights = [NL_CATEGORY_SHARES[c] for c in nl_categories]

    for index in range(count):
        tld = rng.choice(profile.tlds)
        tld_zone = builder.ensure_tld(tld)
        base = f"{list_name}-d{index}.{tld}."
        responsive = rng.random() < profile.responsive_rate

        category: Optional[str] = None
        if profile.name == ".nl" and rng.random() < (1475267 / 5454833):
            category = rng.choices(nl_categories, weights=nl_weights, k=1)[0]

        roll = rng.random()
        if roll < profile.cname_rate:
            kind = "cname"
        elif roll < profile.cname_rate + profile.soa_rate:
            kind = "host"
        else:
            kind = "apex"
        # Umbrella-style FQDN entries: CNAME'd CDN hosts and plain hosts
        # live at a www name; "apex" entries are the zone apex itself.
        if profile.format == "FQDN" and kind != "apex":
            fqdn = f"www.{base}"
        else:
            fqdn = base

        bailiwick = rng.choices(
            ["out", "in", "mixed"], weights=list(profile.bailiwick), k=1
        )[0]

        domain = GeneratedDomain(
            name=Name(fqdn),
            list_name=profile.name,
            format=profile.format,
            responsive=responsive,
            kind=kind,
            bailiwick=bailiwick,
            parent=Name(f"{tld}."),
            category=category,
        )
        generated.append(domain)
        if not responsive:
            continue  # listed but dead: no delegation at all

        zone = Zone(base, default_ttl=3600)
        zone.add_soa(f"ns1.{base}")

        provider_ns, provider_server = builder.provider(
            list_name, rng.randrange(provider_count)
        )

        category_ttls = NL_CATEGORY_TTLS.get(category or "", {})

        def ttl_for(rtype: str, buckets: TTLBuckets) -> int:
            if category is not None and rtype in category_ttls:
                # Category median targets with human jitter around them.
                base_ttl = category_ttls[rtype]
                jitter = rng.choice([0.5, 1.0, 1.0, 1.0, 2.0])
                return int(base_ttl * jitter)
            return builder.pick_ttl(buckets, ttl0.get(rtype, 0.0))

        ns_ttl = ttl_for("ns", profile.ttl.ns)
        ns_names: list[Name] = []
        if bailiwick == "out":
            ns_names = list(provider_ns)
        elif bailiwick == "in":
            ns_names = [Name(f"ns1.{base}"), Name(f"ns2.{base}")]
        else:
            ns_names = [provider_ns[0], Name(f"ns1.{base}")]

        server = provider_server
        # A 2LD answering NS queries with a CNAME (apex alias) or SOA
        # (plain host zone) carries no apex NS set in the child, though the
        # TLD still delegates it — the Table 9 "CNAME"/"SOA" rows.
        child_has_apex_ns = profile.format == "FQDN" or kind == "apex"
        for ns_name in ns_names:
            if child_has_apex_ns:
                zone.add(base, RdataType.NS, NS(ns_name), ttl=ns_ttl)
            tld_zone.add(base, RdataType.NS, NS(ns_name), ttl=tld_zone.default_ttl)
            if ns_name.is_subdomain_of(Name(base)):
                # In-bailiwick server: host it on the provider's machine
                # anyway, but publish glue in the TLD.
                zone.add(ns_name, RdataType.A, A(server.endpoint.address), ttl=ns_ttl)
                tld_zone.add(
                    ns_name, RdataType.A, A(server.endpoint.address),
                    ttl=tld_zone.default_ttl,
                )
                builder.host_addresses[ns_name] = server.endpoint.address
        domain.ns_names = tuple(ns_names)

        a_ttl = ttl_for("a", profile.ttl.a)
        web_ip = builder.web_ip(list_name, profile.domains_per_address)
        apex_is_cname = profile.format != "FQDN" and kind == "cname"
        if apex_is_cname:
            zone.add(
                base, RdataType.CNAME,
                CNAME(Name(f"edge{rng.randrange(max(2, count // 40))}.cdn-net.com.")),
                ttl=builder.pick_ttl(profile.ttl.cname, 0.0),
            )
        else:
            zone.add(base, RdataType.A, A(web_ip), ttl=a_ttl)
        if not apex_is_cname and rng.random() < profile.aaaa_rate:
            # IPv6 web hosting is shared like IPv4 (unique ratio ~2.2).
            v6_pool = max(2, int(count * profile.aaaa_rate / 2.2))
            zone.add(
                base, RdataType.AAAA, AAAA(f"2001:db8::{rng.randrange(v6_pool) + 1:x}"),
                ttl=ttl_for("aaaa", profile.ttl.aaaa),
            )
        if not apex_is_cname and rng.random() < profile.mx_rate:
            # Mail hosting is moderately concentrated (Table 5's MX unique
            # ratio is ~3.5 across lists).
            mail_host = f"mx.mail{rng.randrange(max(2, count // 5))}.net."
            zone.add(
                base, RdataType.MX, MX(10, Name(mail_host)),
                ttl=ttl_for("mx", profile.ttl.mx),
            )
        if not apex_is_cname and rng.random() < profile.dnskey_rate:
            zone.add(
                base,
                RdataType.DNSKEY,
                DNSKEY(257, 3, 13, bytes([index % 256, (index >> 8) % 256]) * 4),
                ttl=ttl_for("dnskey", profile.ttl.dnskey),
            )

        if profile.format == "FQDN" and kind == "cname":
            # CDN aliases: roughly half point at per-customer edge names,
            # half at shared platform names (Table 5's unique-CNAME ratio).
            if rng.random() < 0.5:
                cdn = f"{base.rstrip('.').replace('.', '-')}.edgekey.net."
            else:
                cdn = f"edge{rng.randrange(max(2, count // 40))}.cdn-net.com."
            zone.add(
                fqdn, RdataType.CNAME, CNAME(Name(cdn)),
                ttl=builder.pick_ttl(profile.ttl.cname, 0.0),
            )
        elif profile.format == "FQDN" and kind == "host":
            zone.add(fqdn, RdataType.A, A(web_ip), ttl=a_ttl)
        server.add_zone(zone)
    return generated


def _generate_root_list(
    builder: _UniverseBuilder, profile: ListProfile, count: int
) -> list[GeneratedDomain]:
    """TLDs delegated from the root, per the root profile."""
    rng = builder.rng
    generated: list[GeneratedDomain] = []
    for index in range(count):
        tld = f"tld{index}"
        responsive = rng.random() < profile.responsive_rate
        bailiwick = rng.choices(
            ["out", "in", "mixed"], weights=list(profile.bailiwick), k=1
        )[0]
        domain = GeneratedDomain(
            name=Name(f"{tld}."),
            list_name=profile.name,
            format="TLD",
            responsive=responsive,
            kind="apex",
            bailiwick=bailiwick,
            parent=Name(""),
        )
        generated.append(domain)
        if not responsive:
            continue

        zone = Zone(f"{tld}.", default_ttl=86400)
        zone.add_soa(f"a.nic.{tld}.")
        server = builder._add_server(f"a.nic.{tld}")
        ns_ttl = builder.pick_ttl(profile.ttl.ns, 0.0)
        a_ttl = builder.pick_ttl(profile.ttl.a, 0.0)

        # Out-of-bailiwick TLD service runs on shared anycast operators
        # (PCH, Netnod, ... in reality); each hosts many TLD zones.
        if bailiwick == "out":
            anycast_ns, anycast_server = builder.provider("root", index % 40)
            ns_names = [anycast_ns[0]]
            anycast_server.add_zone(zone)
        elif bailiwick == "in":
            ns_names = [Name(f"a.nic.{tld}.")]
        else:
            anycast_ns, anycast_server = builder.provider("root", index % 40)
            ns_names = [Name(f"a.nic.{tld}."), anycast_ns[0]]
            anycast_server.add_zone(zone)

        for ns_name in ns_names:
            zone.add(f"{tld}.", RdataType.NS, NS(ns_name), ttl=ns_ttl)
            builder._root_zone.add(f"{tld}.", RdataType.NS, NS(ns_name), ttl=172800)
            if ns_name.is_subdomain_of(Name(f"{tld}.")):
                zone.add(ns_name, RdataType.A, A(server.endpoint.address), ttl=a_ttl)
                if rng.random() < profile.aaaa_rate:
                    zone.add(
                        ns_name, RdataType.AAAA, AAAA(f"2001:db8:aaa:{index % 65535:x}::1"),
                        ttl=builder.pick_ttl(profile.ttl.aaaa, 0.0),
                    )
                builder._root_zone.add(
                    ns_name, RdataType.A, A(server.endpoint.address), ttl=172800
                )
                builder.host_addresses[ns_name] = server.endpoint.address
        if rng.random() < profile.mx_rate:
            zone.add(
                f"{tld}.", RdataType.MX, MX(10, Name(f"mail.nic.{tld}.")),
                ttl=builder.pick_ttl(profile.ttl.mx, 0.0),
            )
        server.add_zone(zone)
        domain.ns_names = tuple(ns_names)
        builder.tld_zones.setdefault(tld, zone)
        builder.tld_server_addresses.setdefault(tld, server.endpoint.address)
    return generated
