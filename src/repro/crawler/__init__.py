"""TTL crawling of top lists (paper §5.1).

- :mod:`repro.crawler.toplists` — synthetic Alexa / Majestic / Umbrella /
  .nl / root list generators, distributionally calibrated to Table 5 and
  Figure 9, hosted on simulated authoritative servers,
- :mod:`repro.crawler.crawl` — the crawler: queries the parent and the
  child authoritative servers directly (no shared recursives) for NS, A,
  AAAA, MX, DNSKEY and CNAME records,
- :mod:`repro.crawler.dmap` — DMap-style content classification of .nl
  domains (Tables 6 and 7),
- :mod:`repro.crawler.report` — the Table 5/8/9 and Figure 9 aggregations.
"""

from repro.crawler.toplists import (
    LIST_PROFILES,
    CrawlUniverse,
    ListProfile,
    build_crawl_universe,
)
from repro.crawler.crawl import CrawlRecord, Crawler, CrawlResult, crawl_parallel
from repro.crawler.dmap import ContentCategory, DMapReport, dmap_classify
from repro.crawler.report import (
    bailiwick_census,
    record_counts,
    ttl_cdf_by_type,
    ttl_zero_census,
)

__all__ = [
    "CrawlRecord",
    "CrawlResult",
    "CrawlUniverse",
    "Crawler",
    "ContentCategory",
    "DMapReport",
    "LIST_PROFILES",
    "ListProfile",
    "bailiwick_census",
    "build_crawl_universe",
    "crawl_parallel",
    "dmap_classify",
    "record_counts",
    "ttl_cdf_by_type",
    "ttl_zero_census",
]
