"""Virtual time.

All timestamps in the simulation are seconds since the experiment epoch,
held in a :class:`SimClock` that only the experiment driver advances.
Caches, logs and measurement results all read the same clock, so TTL
expiry is exact and reproducible.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing virtual clock."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds since the epoch."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f})"
