"""Exchange tracing: a structured, pcap-like record of simulated traffic.

The paper repeatedly pivots to "confirmation from the authoritative side"
(§4.6) and to pcap analysis (§4.4).  A :class:`TraceRecorder` attached to
a :class:`~repro.net.transport.Network` captures every exchange — client,
destination, question, response code, answer summary, timing — so any
experiment can be audited the same way after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType


@dataclass(frozen=True)
class ExchangeRecord:
    """One request/response pair on the fabric."""

    timestamp: float
    client_address: str
    server_address: str
    qname: Name
    qtype: RdataType
    rcode: Rcode
    authoritative: bool
    answer_count: int
    referral: bool
    rtt: float

    def summary(self) -> str:
        kind = "referral" if self.referral else self.rcode.name
        return (
            f"t={self.timestamp:10.3f} {self.client_address} -> "
            f"{self.server_address} {self.qname} {self.qtype.name} "
            f"[{kind}{' aa' if self.authoritative else ''}] "
            f"{self.rtt * 1000:.1f}ms"
        )


@dataclass
class TraceRecorder:
    """Collects :class:`ExchangeRecord` rows; attach via :func:`attach`."""

    records: list[ExchangeRecord] = field(default_factory=list)
    #: Optional filter: record only exchanges this predicate accepts.
    keep: Optional[Callable[[ExchangeRecord], bool]] = None

    def add(self, record: ExchangeRecord) -> None:
        if self.keep is None or self.keep(record):
            self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ExchangeRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()

    # -- queries ---------------------------------------------------------------
    def to_server(self, address: str) -> list[ExchangeRecord]:
        return [r for r in self.records if r.server_address == address]

    def for_qname(self, qname: Name | str) -> list[ExchangeRecord]:
        name = Name(qname)
        return [r for r in self.records if r.qname == name]

    def queries_per_server(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.server_address] = counts.get(record.server_address, 0) + 1
        return counts

    def render(self, limit: int = 50) -> str:
        lines = [record.summary() for record in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more")
        return "\n".join(lines)


def attach(network, recorder: TraceRecorder) -> None:
    """Wrap ``network.exchange`` so every call is recorded.

    Idempotent per recorder; detach by calling :func:`detach`.
    """
    if getattr(network, "_trace_original_exchange", None) is not None:
        raise RuntimeError("network already has a trace attached")
    original = network.exchange

    def traced_exchange(client, dst_address, query: Message, now, **kwargs):
        response, elapsed = original(client, dst_address, query, now, **kwargs)
        question = query.question
        if question is not None:
            recorder.add(
                ExchangeRecord(
                    timestamp=now,
                    client_address=client.address,
                    server_address=dst_address,
                    qname=question.qname,
                    qtype=question.qtype,
                    rcode=response.rcode,
                    authoritative=response.flags.aa,
                    answer_count=len(response.answer),
                    referral=response.is_referral(),
                    rtt=elapsed,
                )
            )
        return response, elapsed

    network._trace_original_exchange = original
    network.exchange = traced_exchange


def detach(network) -> None:
    """Remove a previously attached trace wrapper (no-op if absent)."""
    original = getattr(network, "_trace_original_exchange", None)
    if original is not None:
        network.exchange = original
        network._trace_original_exchange = None
