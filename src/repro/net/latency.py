"""Geographic round-trip-time model.

The paper's latency results (Figures 10 and 11) rest on one contrast: a
cache hit is answered by a recursive resolver milliseconds from the client,
while a cache miss walks to authoritative servers that may be continents
away.  This model preserves that contrast:

- a base RTT matrix between continental regions (intercontinental paths are
  100–300 ms, intra-region paths tens of ms),
- a deterministic per-path offset (two hosts in the same region are not
  equidistant), and
- per-query lognormal jitter (queueing, last-mile variance).

Client-to-local-resolver paths use a dedicated short "last mile" latency,
since most probes use a resolver in their own network (§4.4).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

from repro.net.topology import Endpoint, Region

#: One-way base latency between regions, in milliseconds.  Symmetric.
#: Derived from typical great-circle distances; only the contrast matters.
_REGION_RTT_MS: dict[tuple[Region, Region], float] = {}


def _set_rtt(a: Region, b: Region, ms: float) -> None:
    _REGION_RTT_MS[(a, b)] = ms
    _REGION_RTT_MS[(b, a)] = ms


_set_rtt(Region.EU, Region.EU, 25.0)
_set_rtt(Region.NA, Region.NA, 35.0)
_set_rtt(Region.AS, Region.AS, 45.0)
_set_rtt(Region.SA, Region.SA, 40.0)
_set_rtt(Region.OC, Region.OC, 30.0)
_set_rtt(Region.AF, Region.AF, 50.0)
_set_rtt(Region.EU, Region.NA, 95.0)
_set_rtt(Region.EU, Region.AS, 150.0)
_set_rtt(Region.EU, Region.SA, 190.0)
_set_rtt(Region.EU, Region.OC, 280.0)
_set_rtt(Region.EU, Region.AF, 110.0)
_set_rtt(Region.NA, Region.AS, 160.0)
_set_rtt(Region.NA, Region.SA, 130.0)
_set_rtt(Region.NA, Region.OC, 180.0)
_set_rtt(Region.NA, Region.AF, 200.0)
_set_rtt(Region.AS, Region.SA, 310.0)
_set_rtt(Region.AS, Region.OC, 140.0)
_set_rtt(Region.AS, Region.AF, 240.0)
_set_rtt(Region.SA, Region.OC, 300.0)
_set_rtt(Region.SA, Region.AF, 280.0)
_set_rtt(Region.OC, Region.AF, 320.0)


class LatencyModel:
    """Computes RTTs between endpoints.

    ``rtt()`` returns seconds (not ms) so callers can add them straight to
    virtual-clock timestamps.
    """

    def __init__(
        self,
        seed: int = 0,
        jitter_sigma: float = 0.25,
        last_mile_ms: float = 4.0,
    ) -> None:
        self._seed = seed
        self._jitter_sigma = jitter_sigma
        self.last_mile_ms = last_mile_ms
        self._rng = random.Random(seed ^ 0x5A17)
        # _path_offset_ms is a pure function of (addresses, seed); the
        # sha256 per exchange shows up in campaign profiles, so memoize it.
        self._offset_memo: dict[tuple[str, str], float] = {}

    def reseed(self, seed: int) -> None:
        """Restore the just-constructed state under a new seed.

        Path offsets are seed-dependent, so the memo is dropped with the
        RNG — after this call the model is indistinguishable from
        ``LatencyModel(seed, ...)`` with the same tuning.
        """
        self._seed = seed
        self._rng = random.Random(seed ^ 0x5A17)
        self._offset_memo.clear()

    # -- deterministic components ------------------------------------------------
    def base_rtt_ms(self, src: Endpoint, dst: Endpoint) -> float:
        """The deterministic RTT between two endpoints, in milliseconds.

        Used directly for anycast catchment (nearest site wins) so that a
        client's chosen site is stable across queries.
        """
        if src.address == dst.address:
            return 0.1
        base = _REGION_RTT_MS[(src.region, dst.region)]
        return base + self._path_offset_ms(src, dst)

    def _path_offset_ms(self, src: Endpoint, dst: Endpoint) -> float:
        """A stable per-path offset in [0, base/2), derived from addresses."""
        memo_key = (src.address, dst.address)
        offset = self._offset_memo.get(memo_key)
        if offset is not None:
            return offset
        key = "|".join(sorted(memo_key)) + f"|{self._seed}"
        digest = hashlib.sha256(key.encode("ascii")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        base = _REGION_RTT_MS[(src.region, dst.region)]
        offset = fraction * base * 0.5
        if len(self._offset_memo) < 65536:
            self._offset_memo[memo_key] = offset
        return offset

    # -- sampled RTTs ----------------------------------------------------------
    def rtt(self, src: Endpoint, dst: Endpoint, rng: Optional[random.Random] = None) -> float:
        """One sampled round trip time between endpoints, in **seconds**."""
        sampler = rng or self._rng
        base_ms = self.base_rtt_ms(src, dst)
        jitter = sampler.lognormvariate(0.0, self._jitter_sigma)
        return base_ms * jitter / 1000.0

    def last_mile_rtt(self, rng: Optional[random.Random] = None) -> float:
        """Client to its own on-network recursive resolver, in seconds.

        This is the "1 ms cache hit" path of the paper's introduction; we
        use a few milliseconds with jitter.
        """
        sampler = rng or self._rng
        jitter = sampler.lognormvariate(0.0, self._jitter_sigma)
        return self.last_mile_ms * jitter / 1000.0

    def nearest(self, src: Endpoint, candidates: list[Endpoint]) -> Endpoint:
        """The candidate with the lowest deterministic RTT from ``src``.

        This is how anycast routing picks a site (catchment).
        """
        if not candidates:
            raise ValueError("no candidates to choose from")
        return min(candidates, key=lambda dst: self.base_rtt_ms(src, dst))
