"""Datagram transport connecting endpoints to servers.

The :class:`Network` is the simulation's fabric: servers register under
their endpoint addresses, and a client exchange is a synchronous call that
returns the response plus the elapsed time (RTT, or timeout-and-retry
accumulations).  Loss is applied per transmission by a seeded
:class:`LossModel`, so failure-injection experiments (the paper's
unreachable-child scenario, §4.4) are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol

from repro.dns.message import Message
from repro.metrics.registry import NULL_COUNTER, NULL_HISTOGRAM, log_buckets
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint

if TYPE_CHECKING:
    from repro.faults import FaultInjector
    from repro.metrics import MetricsRegistry

#: BIND-like defaults: resolvers retry a few times with a short timeout.
DEFAULT_TIMEOUT = 2.0
DEFAULT_RETRIES = 2

#: RTT histogram buckets: 0.1 ms .. 10 s, four per decade.  Fixed at
#: module level so every shard's histogram merges exactly.
RTT_BUCKETS_MS = log_buckets(0.1, 10_000.0, per_decade=4)


class NetworkTimeout(Exception):
    """All transmissions of a query were lost or the target is down.

    ``elapsed`` carries the virtual time burned waiting, which callers add
    to their clocks (timeouts dominate tail latency under loss).
    """

    def __init__(self, message: str, elapsed: float) -> None:
        super().__init__(message)
        self.elapsed = elapsed


@dataclass(frozen=True)
class BackoffPolicy:
    """How a client waits between retransmissions.

    The defaults reproduce the historical fixed-interval behaviour
    (``factor=1.0``, no jitter, no budget), so existing experiments are
    bit-for-bit unchanged.  :meth:`hardened` is the resilient profile the
    fault-injection scenarios use: exponential backoff spreads retries
    out of a congested window, jitter desynchronizes clients hammering a
    recovering server, and the retry *budget* caps the total virtual
    time burned waiting — a resolver under an upstream storm gives up
    and falls back (sibling NS, serve-stale) instead of stalling clients
    for the full retry ladder.
    """

    timeout: float = DEFAULT_TIMEOUT
    retries: int = DEFAULT_RETRIES
    #: Multiplier applied per attempt: wait_n = timeout * factor**n.
    factor: float = 1.0
    #: Fractional jitter in [0, 1): each wait is scaled by a uniform
    #: draw from [1-jitter, 1+jitter] (from the fabric's own seeded RNG,
    #: so jittered runs stay deterministic).
    jitter: float = 0.0
    #: Cap on total wait across all attempts; ``None`` means unbounded.
    budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout {self.timeout} must be > 0")
        if self.retries < 0:
            raise ValueError(f"retries {self.retries} must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor {self.factor} must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter {self.jitter} outside [0, 1)")
        if self.budget is not None and self.budget <= 0:
            raise ValueError(f"retry budget {self.budget} must be > 0")

    def attempt_wait(self, attempt: int, rng: random.Random) -> float:
        """The timeout burned by (lost) attempt number ``attempt``."""
        wait = self.timeout * self.factor**attempt
        if self.jitter:
            wait *= 1.0 + self.jitter * (rng.random() * 2.0 - 1.0)
        return wait

    @classmethod
    def hardened(
        cls,
        timeout: float = 0.4,
        retries: int = 4,
        budget: Optional[float] = 6.0,
    ) -> "BackoffPolicy":
        """Exponential backoff with jitter and a bounded retry budget."""
        return cls(
            timeout=timeout, retries=retries, factor=2.0, jitter=0.1,
            budget=budget,
        )


class Server(Protocol):
    """Anything that can answer DNS queries on the fabric."""

    @property
    def endpoint(self) -> Endpoint: ...

    def endpoint_for(self, client: Endpoint, latency: LatencyModel) -> Endpoint:
        """The concrete endpoint answering ``client`` (anycast picks a site)."""
        ...

    def handle_query(self, query: Message, client: Endpoint, now: float) -> Message: ...


@dataclass
class LossModel:
    """Independent per-transmission loss with optional per-address overrides.

    ``down`` addresses drop everything — used to take the child
    authoritative servers offline (zurrundedu-offline scenario).
    """

    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate {self.rate} outside [0, 1)")
        self._rng = random.Random(self.seed ^ 0x10552)
        self._down: set[str] = set()

    def take_down(self, address: str) -> None:
        self._down.add(address)

    def bring_up(self, address: str) -> None:
        self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    def lost(self, dst_address: str) -> bool:
        if dst_address in self._down:
            return True
        return self.rate > 0 and self._rng.random() < self.rate

    def reseed(self, seed: int) -> None:
        """Restore the just-constructed state under a new seed."""
        self.seed = seed
        self._rng = random.Random(seed ^ 0x10552)
        self._down.clear()


class Network:
    """The datagram fabric: address → server registry plus latency/loss."""

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        seed: int = 0,
    ) -> None:
        self.latency = latency or LatencyModel(seed=seed)
        self.loss = loss or LossModel(seed=seed)
        self._servers: dict[str, Server] = {}
        self._rng = random.Random(seed ^ 0x7E77)
        #: Jitter draws come from their own stream so enabling backoff
        #: jitter never perturbs the latency RNG (and thus the RTTs) of
        #: an otherwise-identical run.
        self._jitter_rng = random.Random(seed ^ 0x8ACF)
        self.metrics: Optional["MetricsRegistry"] = None
        self.faults: Optional["FaultInjector"] = None
        #: Fabric-wide default retry policy; ``None`` keeps the historical
        #: per-call ``timeout``/``retries`` behaviour.
        self.backoff: Optional[BackoffPolicy] = None
        self._m_exchanges = NULL_COUNTER
        self._m_timeouts = NULL_COUNTER
        self._m_lost = NULL_COUNTER
        self._m_retries = NULL_COUNTER
        self._m_budget_exhausted = NULL_COUNTER
        self._m_rtt = NULL_HISTOGRAM
        self._m_server_queries = NULL_COUNTER

    def reset_runtime(self, seed: int) -> None:
        """Return the fabric to its just-built state under ``seed``.

        The campaign worldcache calls this between shards instead of
        rebuilding the world: RNG streams restart exactly where a fresh
        ``Network(seed=seed)`` would, attached metrics/faults/backoff are
        dropped back to ``None`` (shards attach their own), and every
        registered server's runtime state (query tallies, logs, fault
        hooks, catchment caches) is reset.  The server *registry* itself
        is structural and untouched — builders never register servers
        conditionally on the seed.
        """
        self.latency.reseed(seed)
        self.loss.reseed(seed)
        self._rng = random.Random(seed ^ 0x7E77)
        self._jitter_rng = random.Random(seed ^ 0x8ACF)
        self.metrics = None
        self.faults = None
        self.backoff = None
        self._m_exchanges = NULL_COUNTER
        self._m_timeouts = NULL_COUNTER
        self._m_lost = NULL_COUNTER
        self._m_retries = NULL_COUNTER
        self._m_budget_exhausted = NULL_COUNTER
        self._m_rtt = NULL_HISTOGRAM
        self._m_server_queries = NULL_COUNTER
        seen: set[int] = set()
        for server in self._servers.values():
            if id(server) in seen:  # anycast registers sites + service addr
                continue
            seen.add(id(server))
            reset = getattr(server, "reset_runtime_state", None)
            if reset is not None:
                reset()
            else:
                self._wire_server_faults(server)  # at least drop fault hooks

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Instrument the fabric (and per-server query tallies) into
        ``registry``.  Resolvers built afterwards pick the registry up via
        :attr:`metrics` and wire their caches into the same snapshot."""
        self.metrics = registry
        self._m_exchanges = registry.counter("net.exchanges")
        self._m_timeouts = registry.counter("net.timeouts")
        self._m_lost = registry.counter("net.lost_transmissions")
        self._m_retries = registry.counter("net.retries")
        self._m_budget_exhausted = registry.counter("net.retry_budget_exhausted")
        self._m_rtt = registry.histogram("net.rtt_ms", RTT_BUCKETS_MS)
        self._m_server_queries = registry.labeled_counter("auth.queries")
        if self.faults is not None:
            self.faults.attach_metrics(registry)

    def attach_faults(self, injector: "FaultInjector") -> None:
        """Wire a fault injector into the fabric and every registered
        server.  Call after :meth:`attach_metrics` so fault events land in
        the same snapshot (either order works; metrics re-attach)."""
        self.faults = injector
        if self.metrics is not None:
            injector.attach_metrics(self.metrics)
        for server in self._servers.values():
            self._wire_server_faults(server)

    def _wire_server_faults(self, server: Server) -> None:
        try:
            server.faults = self.faults  # type: ignore[attr-defined]
        except AttributeError:
            pass  # read-only test doubles just skip server-side faults

    # -- registry -----------------------------------------------------------
    def register(self, server: Server, address: Optional[str] = None) -> None:
        self._servers[address or server.endpoint.address] = server
        if self.faults is not None:
            self._wire_server_faults(server)

    def deregister(self, address: str) -> None:
        self._servers.pop(address, None)

    def server_at(self, address: str) -> Optional[Server]:
        return self._servers.get(address)

    # -- exchanges -------------------------------------------------------------
    def exchange(
        self,
        client: Endpoint,
        dst_address: str,
        query: Message,
        now: float,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        backoff: Optional[BackoffPolicy] = None,
    ) -> tuple[Message, float]:
        """Send ``query`` and wait for the answer.

        Returns ``(response, elapsed_seconds)``.  Each lost transmission
        burns the attempt's wait (a flat ``timeout`` under the default
        policy); after ``retries`` extra attempts a :class:`NetworkTimeout`
        carrying the total elapsed time is raised.  The server sees the
        query at ``now + elapsed + rtt/2``.

        The retry schedule comes from, in order: the explicit ``backoff``
        argument, the fabric-wide :attr:`backoff`, or a flat policy built
        from ``timeout``/``retries``.  A policy budget caps the total
        wait: the last wait is clipped to the remaining budget and no
        further attempts are made once it is spent (counted in
        ``net.retry_budget_exhausted``).

        An attached :class:`FaultInjector` is consulted per transmission
        (loss/blackhole/outage/storm windows, extra delay) and per
        anycast delivery (down-site rerouting).
        """
        policy = backoff if backoff is not None else self.backoff
        if policy is None:
            policy = BackoffPolicy(timeout=timeout, retries=retries)
        elapsed = 0.0
        attempts = 1 + policy.retries
        budget = policy.budget
        server = self._servers.get(dst_address)
        faults = self.faults
        src = client.address
        for attempt in range(attempts):
            if budget is not None and attempt > 0 and elapsed >= budget:
                self._m_budget_exhausted.inc()
                break
            if attempt > 0:
                self._m_retries.inc()
            t = now + elapsed
            lost = server is None or self.loss.lost(dst_address)
            extra_delay = 0.0
            if not lost and faults is not None:
                lost, extra_delay = faults.transmission_fate(src, dst_address, t)
            site: Optional[Endpoint] = None
            if not lost:
                site = server.endpoint_for(client, self.latency)
                if faults is not None:
                    site = faults.pick_site(
                        server, dst_address, client, self.latency, site, t
                    )
                    lost = site is None
            if lost:
                wait = policy.attempt_wait(attempt, self._jitter_rng)
                if budget is not None:
                    wait = min(wait, max(0.0, budget - elapsed))
                self._m_lost.inc()
                elapsed += wait
                continue
            assert site is not None
            rtt = self.latency.rtt(client, site, self._rng) + extra_delay
            arrival = t + rtt / 2.0
            response = server.handle_query(query, client, arrival)
            elapsed += rtt
            self._m_exchanges.inc()
            self._m_rtt.observe(rtt * 1000.0)
            self._m_server_queries.inc(str(site))
            if faults is not None:
                faults.note_delivery(src, dst_address, t + rtt)
            return response, elapsed
        self._m_timeouts.inc()
        raise NetworkTimeout(f"no response from {dst_address}", elapsed)

    # -- sessions -------------------------------------------------------------
    def open_session(self, client: Endpoint, dst_address: str) -> "TcpSession":
        """A length-framed TCP session bound to this fabric.

        The session is returned unconnected; call :meth:`TcpSession.connect`
        on the sim clock.  Long-lived connections are what the
        :mod:`repro.push` subscription layer rides.
        """
        return TcpSession(self, client, dst_address)


class SessionBroken(Exception):
    """A framed TCP session died mid-flight.

    Raised when a fault window (blackhole, outage, storm, loss) dooms a
    transmission on an established connection, or when the session is
    used after a break.  ``elapsed`` carries the virtual time burned
    before the break was noticed (the pending frame's timeout).
    """

    def __init__(self, message: str, elapsed: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class TcpSession:
    """One long-lived RFC 1035 §4.2.2 length-framed TCP connection.

    The datagram fabric treats every query independently; a session
    models the *connection* reuse that pub/sub subscriptions need: one
    handshake up front, then any number of framed exchanges and
    keepalives on the same five-tuple.

    Fault and determinism semantics:

    - RTTs draw from the fabric's latency model and RNG exactly like
      datagram exchanges, so armed runs stay byte-identical serial vs
      ``--parallel N``.
    - The base :class:`LossModel`'s probabilistic datagram loss is
      *absorbed* (TCP retransmits below this abstraction, at the cost of
      delay the sim ignores); only hard conditions break a session: the
      destination marked down, or an active fault window dooming the
      transmission (``blackhole``/``server_outage``/``upstream_storm``,
      or an unlucky ``loss`` draw — heavy loss storms do reset real TCP
      connections).
    - A ``delay`` fault window stretches the RTT; it never breaks the
      session.
    - Once broken, every call raises :class:`SessionBroken` until
      :meth:`connect` succeeds again; reconnect pacing is the owner's
      job (seeded :class:`BackoffPolicy`, see ``repro.push``).

    Session activity lands in lazily-declared ``net.tcp.*`` instruments,
    so runs that never open a session snapshot byte-identically to
    pre-session builds.
    """

    __slots__ = (
        "network", "client", "dst_address", "established", "opened_at",
        "broken_at", "exchanges", "keepalives", "connects",
    )

    def __init__(self, network: Network, client: Endpoint, dst_address: str) -> None:
        self.network = network
        self.client = client
        self.dst_address = dst_address
        self.established = False
        self.opened_at: Optional[float] = None
        self.broken_at: Optional[float] = None
        self.exchanges = 0
        self.keepalives = 0
        self.connects = 0

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"TcpSession({self.client.address} -> {self.dst_address}, {state}, "
            f"{self.exchanges} exchanges)"
        )

    @property
    def alive(self) -> bool:
        return self.established

    # -- metrics (lazy: declared on first session activity) -------------------
    def _count(self, name: str) -> None:
        registry = self.network.metrics
        if registry is not None:
            registry.counter(name).inc()

    # -- fate ----------------------------------------------------------------
    def _fate(self, t: float) -> tuple[bool, float]:
        """(doomed, extra_delay) for one framed transmission at ``t``."""
        network = self.network
        lost = (
            network.server_at(self.dst_address) is None
            or network.loss.is_down(self.dst_address)
        )
        extra = 0.0
        if not lost and network.faults is not None:
            lost, extra = network.faults.transmission_fate(
                self.client.address, self.dst_address, t
            )
        return lost, extra

    def _deliver_site(self, t: float) -> Optional[Endpoint]:
        """The concrete endpoint frames reach, after anycast rerouting."""
        network = self.network
        server = network.server_at(self.dst_address)
        if server is None:
            return None
        site = server.endpoint_for(self.client, network.latency)
        if network.faults is not None:
            site = network.faults.pick_site(
                server, self.dst_address, self.client, network.latency, site, t
            )
        return site

    def _mark_broken(self, t: float) -> None:
        if self.established:
            self.established = False
            self.broken_at = t
            self._count("net.tcp.breaks")

    # -- lifecycle ------------------------------------------------------------
    def connect(self, now: float, timeout: float = DEFAULT_TIMEOUT) -> float:
        """Open (or reopen) the connection; returns the handshake RTT.

        Raises :class:`NetworkTimeout` (carrying ``timeout`` as elapsed)
        when the handshake is doomed — the caller schedules the retry.
        """
        lost, extra = self._fate(now)
        site = None if lost else self._deliver_site(now)
        if site is None:
            self.established = False
            self.broken_at = now
            raise NetworkTimeout(f"connect to {self.dst_address} failed", timeout)
        rtt = self.network.latency.rtt(self.client, site, self.network._rng) + extra
        self.established = True
        self.broken_at = None
        self.opened_at = now + rtt
        self.connects += 1
        self._count("net.tcp.opens")
        if self.network.faults is not None:
            self.network.faults.note_delivery(
                self.client.address, self.dst_address, now + rtt
            )
        return rtt

    def close(self, now: float) -> None:
        """Orderly shutdown; not counted as a break."""
        self.established = False
        self.broken_at = None

    # -- framed traffic --------------------------------------------------------
    def exchange(
        self, query: Message, now: float, timeout: float = DEFAULT_TIMEOUT
    ) -> tuple[Message, float]:
        """One framed request/response on the established connection.

        Returns ``(response, elapsed_seconds)``.  The server sees the
        frame at ``now + rtt/2`` and its answer is counted under
        ``auth.queries`` like any datagram exchange.  A doomed
        transmission breaks the session and raises :class:`SessionBroken`
        with ``elapsed=timeout`` (the reader gave up on the half-open
        connection).
        """
        if not self.established:
            raise SessionBroken(f"session to {self.dst_address} is not connected")
        lost, extra = self._fate(now)
        site = None if lost else self._deliver_site(now)
        if site is None:
            self._mark_broken(now)
            raise SessionBroken(
                f"session to {self.dst_address} broke mid-exchange", timeout
            )
        network = self.network
        rtt = network.latency.rtt(self.client, site, network._rng) + extra
        server = network.server_at(self.dst_address)
        assert server is not None  # _fate checked
        response = server.handle_query(query, self.client, now + rtt / 2.0)
        self.exchanges += 1
        self._count("net.tcp.exchanges")
        network._m_server_queries.inc(str(site))
        if network.faults is not None:
            network.faults.note_delivery(
                self.client.address, self.dst_address, now + rtt
            )
        return response, rtt

    def keepalive(self, now: float, timeout: float = DEFAULT_TIMEOUT) -> float:
        """A liveness probe on the connection; returns its RTT.

        Keepalives are transport-level (no DNS message reaches the zone,
        nothing lands in ``auth.queries``); a doomed probe is how an idle
        subscriber discovers a broken session, raising
        :class:`SessionBroken` with ``elapsed=timeout``.
        """
        if not self.established:
            raise SessionBroken(f"session to {self.dst_address} is not connected")
        lost, extra = self._fate(now)
        site = None if lost else self._deliver_site(now)
        if site is None:
            self._mark_broken(now)
            raise SessionBroken(
                f"session to {self.dst_address} broke on keepalive", timeout
            )
        rtt = self.network.latency.rtt(self.client, site, self.network._rng) + extra
        self.keepalives += 1
        self._count("net.tcp.keepalives")
        if self.network.faults is not None:
            self.network.faults.note_delivery(
                self.client.address, self.dst_address, now + rtt
            )
        return rtt
