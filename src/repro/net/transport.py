"""Datagram transport connecting endpoints to servers.

The :class:`Network` is the simulation's fabric: servers register under
their endpoint addresses, and a client exchange is a synchronous call that
returns the response plus the elapsed time (RTT, or timeout-and-retry
accumulations).  Loss is applied per transmission by a seeded
:class:`LossModel`, so failure-injection experiments (the paper's
unreachable-child scenario, §4.4) are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol

from repro.dns.message import Message
from repro.metrics.registry import NULL_COUNTER, NULL_HISTOGRAM, log_buckets
from repro.net.latency import LatencyModel
from repro.net.topology import Endpoint

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry

#: BIND-like defaults: resolvers retry a few times with a short timeout.
DEFAULT_TIMEOUT = 2.0
DEFAULT_RETRIES = 2

#: RTT histogram buckets: 0.1 ms .. 10 s, four per decade.  Fixed at
#: module level so every shard's histogram merges exactly.
RTT_BUCKETS_MS = log_buckets(0.1, 10_000.0, per_decade=4)


class NetworkTimeout(Exception):
    """All transmissions of a query were lost or the target is down.

    ``elapsed`` carries the virtual time burned waiting, which callers add
    to their clocks (timeouts dominate tail latency under loss).
    """

    def __init__(self, message: str, elapsed: float) -> None:
        super().__init__(message)
        self.elapsed = elapsed


class Server(Protocol):
    """Anything that can answer DNS queries on the fabric."""

    @property
    def endpoint(self) -> Endpoint: ...

    def endpoint_for(self, client: Endpoint, latency: LatencyModel) -> Endpoint:
        """The concrete endpoint answering ``client`` (anycast picks a site)."""
        ...

    def handle_query(self, query: Message, client: Endpoint, now: float) -> Message: ...


@dataclass
class LossModel:
    """Independent per-transmission loss with optional per-address overrides.

    ``down`` addresses drop everything — used to take the child
    authoritative servers offline (zurrundedu-offline scenario).
    """

    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate {self.rate} outside [0, 1)")
        self._rng = random.Random(self.seed ^ 0x10552)
        self._down: set[str] = set()

    def take_down(self, address: str) -> None:
        self._down.add(address)

    def bring_up(self, address: str) -> None:
        self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    def lost(self, dst_address: str) -> bool:
        if dst_address in self._down:
            return True
        return self.rate > 0 and self._rng.random() < self.rate


class Network:
    """The datagram fabric: address → server registry plus latency/loss."""

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        seed: int = 0,
    ) -> None:
        self.latency = latency or LatencyModel(seed=seed)
        self.loss = loss or LossModel(seed=seed)
        self._servers: dict[str, Server] = {}
        self._rng = random.Random(seed ^ 0x7E77)
        self.metrics: Optional["MetricsRegistry"] = None
        self._m_exchanges = NULL_COUNTER
        self._m_timeouts = NULL_COUNTER
        self._m_lost = NULL_COUNTER
        self._m_rtt = NULL_HISTOGRAM
        self._m_server_queries = NULL_COUNTER

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Instrument the fabric (and per-server query tallies) into
        ``registry``.  Resolvers built afterwards pick the registry up via
        :attr:`metrics` and wire their caches into the same snapshot."""
        self.metrics = registry
        self._m_exchanges = registry.counter("net.exchanges")
        self._m_timeouts = registry.counter("net.timeouts")
        self._m_lost = registry.counter("net.lost_transmissions")
        self._m_rtt = registry.histogram("net.rtt_ms", RTT_BUCKETS_MS)
        self._m_server_queries = registry.labeled_counter("auth.queries")

    # -- registry -----------------------------------------------------------
    def register(self, server: Server, address: Optional[str] = None) -> None:
        self._servers[address or server.endpoint.address] = server

    def deregister(self, address: str) -> None:
        self._servers.pop(address, None)

    def server_at(self, address: str) -> Optional[Server]:
        return self._servers.get(address)

    # -- exchanges -------------------------------------------------------------
    def exchange(
        self,
        client: Endpoint,
        dst_address: str,
        query: Message,
        now: float,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
    ) -> tuple[Message, float]:
        """Send ``query`` and wait for the answer.

        Returns ``(response, elapsed_seconds)``.  Each lost transmission
        burns ``timeout`` seconds; after ``retries`` extra attempts a
        :class:`NetworkTimeout` carrying the total elapsed time is raised.
        The server sees the query at ``now + elapsed + rtt/2``.
        """
        elapsed = 0.0
        attempts = 1 + max(0, retries)
        server = self._servers.get(dst_address)
        for _ in range(attempts):
            if server is None or self.loss.lost(dst_address):
                self._m_lost.inc()
                elapsed += timeout
                continue
            site = server.endpoint_for(client, self.latency)
            rtt = self.latency.rtt(client, site, self._rng)
            arrival = now + elapsed + rtt / 2.0
            response = server.handle_query(query, client, arrival)
            elapsed += rtt
            self._m_exchanges.inc()
            self._m_rtt.observe(rtt * 1000.0)
            self._m_server_queries.inc(str(site))
            return response, elapsed
        self._m_timeouts.inc()
        raise NetworkTimeout(f"no response from {dst_address}", elapsed)
