"""Topology: regions, autonomous systems and endpoints.

The RIPE Atlas population is described in the paper by region (Figure 10b
uses AF/AS/EU/NA/OC/SA) and by AS (~3.3k ASes hosting ~10k probes, a third
of them hosting several vantage points).  We model just enough structure to
reproduce those breakdowns: every endpoint belongs to an AS, every AS to a
region, and addresses are unique IPv4 strings handed out by an allocator.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field
from typing import Iterator, Optional

import random


class Region(enum.Enum):
    """Continental regions, matching the paper's Figure 10b buckets."""

    AF = "Africa"
    AS = "Asia"
    EU = "Europe"
    NA = "North America"
    OC = "Oceania"
    SA = "South America"


#: RIPE Atlas probe distribution is skewed toward Europe (paper §7,
#: "Ripe Atlas" related work).  These weights drive probe placement.
ATLAS_REGION_WEIGHTS: dict[Region, float] = {
    Region.EU: 0.55,
    Region.NA: 0.18,
    Region.AS: 0.12,
    Region.SA: 0.06,
    Region.OC: 0.05,
    Region.AF: 0.04,
}


@dataclass(frozen=True)
class AutonomousSystem:
    """An AS: a routing domain hosting endpoints, pinned to one region."""

    asn: int
    region: Region

    def __str__(self) -> str:
        return f"AS{self.asn}"


@dataclass(frozen=True)
class Endpoint:
    """An addressed host in the simulation."""

    address: str
    region: Region
    asn: int
    name: str = ""

    def __str__(self) -> str:
        return self.name or self.address


class AddressAllocator:
    """Hands out unique IPv4 addresses from a documentation-style pool.

    Uses 10.0.0.0/8 internally, giving ~16M distinct endpoints — far more
    than the largest experiment (the scaled .nl passive study) needs.
    """

    def __init__(self, base: str = "10.0.0.0") -> None:
        self._next = int(ipaddress.IPv4Address(base)) + 1
        self._limit = int(ipaddress.IPv4Address(base)) + 2**24 - 2

    def allocate(self) -> str:
        if self._next > self._limit:
            raise RuntimeError("address pool exhausted")
        address = str(ipaddress.IPv4Address(self._next))
        self._next += 1
        return address

    def allocate_many(self, count: int) -> list[str]:
        return [self.allocate() for _ in range(count)]

    def mark(self) -> int:
        """The allocator's position, for :meth:`reset_to`."""
        return self._next

    def reset_to(self, mark: int) -> None:
        """Rewind to a previously captured :meth:`mark`."""
        if mark > self._next:
            raise ValueError(f"allocator mark {mark} is ahead of position {self._next}")
        self._next = mark


@dataclass(frozen=True)
class TopologyMark:
    """A rewind point for :meth:`Topology.reset_to` (world baselines)."""

    ases: int
    endpoints: int
    next_asn: int
    allocator: int


class Topology:
    """A population of ASes and endpoints with regional weighting."""

    def __init__(
        self,
        seed: int = 0,
        region_weights: Optional[dict[Region, float]] = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._weights = dict(region_weights or ATLAS_REGION_WEIGHTS)
        total = sum(self._weights.values())
        self._weights = {region: weight / total for region, weight in self._weights.items()}
        self._allocator = AddressAllocator()
        self._ases: list[AutonomousSystem] = []
        self._endpoints: list[Endpoint] = []
        self._next_asn = 64512  # private ASN range

    def mark(self) -> TopologyMark:
        """Capture the current population extent, for :meth:`reset_to`."""
        return TopologyMark(
            ases=len(self._ases),
            endpoints=len(self._endpoints),
            next_asn=self._next_asn,
            allocator=self._allocator.mark(),
        )

    def reset_to(self, mark: TopologyMark, seed: int) -> None:
        """Rewind to ``mark`` and reseed the placement RNG.

        World builders create every AS/endpoint with an *explicit*
        region, so the RNG is never drawn during construction — which is
        what makes "reset a cached world to a new seed" exactly
        equivalent to "rebuild the world from that seed": the structural
        state rewinds to the baseline and the RNG restarts from the same
        state a fresh ``Topology(seed)`` would have.
        """
        if mark.ases > len(self._ases) or mark.endpoints > len(self._endpoints):
            raise ValueError("topology mark is ahead of the current population")
        self._rng = random.Random(seed)
        del self._ases[mark.ases:]
        del self._endpoints[mark.endpoints:]
        self._next_asn = mark.next_asn
        self._allocator.reset_to(mark.allocator)

    @property
    def ases(self) -> list[AutonomousSystem]:
        return list(self._ases)

    @property
    def endpoints(self) -> list[Endpoint]:
        return list(self._endpoints)

    def pick_region(self) -> Region:
        regions = list(self._weights)
        weights = [self._weights[region] for region in regions]
        return self._rng.choices(regions, weights=weights, k=1)[0]

    def create_as(self, region: Optional[Region] = None) -> AutonomousSystem:
        autonomous_system = AutonomousSystem(
            asn=self._next_asn, region=region or self.pick_region()
        )
        self._next_asn += 1
        self._ases.append(autonomous_system)
        return autonomous_system

    def create_ases(self, count: int) -> list[AutonomousSystem]:
        return [self.create_as() for _ in range(count)]

    def create_endpoint(
        self,
        autonomous_system: Optional[AutonomousSystem] = None,
        name: str = "",
    ) -> Endpoint:
        """Create an endpoint, in a fresh AS unless one is given."""
        if autonomous_system is None:
            autonomous_system = self.create_as()
        endpoint = Endpoint(
            address=self._allocator.allocate(),
            region=autonomous_system.region,
            asn=autonomous_system.asn,
            name=name,
        )
        self._endpoints.append(endpoint)
        return endpoint

    def endpoint_in_region(self, region: Region, name: str = "") -> Endpoint:
        return self.create_endpoint(self.create_as(region), name=name)

    def endpoints_by_region(self) -> dict[Region, list[Endpoint]]:
        grouped: dict[Region, list[Endpoint]] = {region: [] for region in Region}
        for endpoint in self._endpoints:
            grouped[endpoint.region].append(endpoint)
        return grouped

    def iter_endpoints(self) -> Iterator[Endpoint]:
        return iter(self._endpoints)
