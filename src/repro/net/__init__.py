"""Deterministic network simulation substrate.

The paper's measurements run on the real Internet; here we substitute a
round-driven simulation with three pieces:

- :mod:`repro.net.clock` — a virtual clock that experiments advance,
- :mod:`repro.net.topology` — regions, autonomous systems and addressed
  endpoints,
- :mod:`repro.net.latency` — a geographic RTT model calibrated so that
  intra-region paths are tens of milliseconds and inter-continental paths
  are hundreds, matching the contrast the latency figures rely on, and
- :mod:`repro.net.transport` — a datagram fabric connecting endpoints to
  servers, with configurable loss, timeouts and retries.

Everything is seeded; two runs with the same seed produce identical
datasets.
"""

from repro.net.clock import SimClock
from repro.net.latency import LatencyModel
from repro.net.topology import (
    AddressAllocator,
    AutonomousSystem,
    Endpoint,
    Region,
    Topology,
)
from repro.net.transport import (
    LossModel,
    Network,
    NetworkTimeout,
    Server,
    SessionBroken,
    TcpSession,
)

__all__ = [
    "AddressAllocator",
    "AutonomousSystem",
    "Endpoint",
    "LatencyModel",
    "LossModel",
    "Network",
    "NetworkTimeout",
    "Region",
    "Server",
    "SessionBroken",
    "SimClock",
    "TcpSession",
    "Topology",
]
