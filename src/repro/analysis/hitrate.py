"""Cache hit rate as a function of TTL — the Jung et al. model.

The paper's related work (§7) builds on Jung, Berger & Balakrishnan, who
modelled TTL-based caches and showed that "TTLs shorter than 1000 s were
sufficient to reap most of the benefits" of caching, and on Moura et al.,
who measured "cache hit rates of around 70 % for TTLs ranging from
1800–86400 s" in production.  This module provides both the closed form
and a discrete simulation, so the repository can show *why* the latency
results of §5.3/§6.2 look the way they do.

For Poisson-arriving queries at rate λ against a record with TTL T, each
cache miss opens a window of length T during which every query hits.  By
renewal-reward, the expected number of queries per cycle is 1 + λT (one
miss plus the hits), so::

    hit_rate(λ, T) = λT / (1 + λT)
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence


def analytic_hit_rate(arrival_rate: float, ttl: float) -> float:
    """Jung et al.'s closed-form hit rate for Poisson arrivals.

    ``arrival_rate`` is in queries/second, ``ttl`` in seconds.
    """
    if arrival_rate < 0 or ttl < 0:
        raise ValueError("rate and TTL must be non-negative")
    mass = arrival_rate * ttl
    return mass / (1.0 + mass)


def simulate_hit_rate(
    arrival_rate: float,
    ttl: float,
    duration: float = 864000.0,
    seed: int = 0,
) -> float:
    """Discrete simulation of the same process (validates the model)."""
    if arrival_rate <= 0:
        return 0.0
    rng = random.Random(seed ^ 0x417)
    now = 0.0
    cache_expires = -1.0
    hits = 0
    queries = 0
    while True:
        now += rng.expovariate(arrival_rate)
        if now >= duration:
            break
        queries += 1
        if now < cache_expires:
            hits += 1
        else:
            cache_expires = now + ttl
    return hits / queries if queries else 0.0


def hit_rate_curve(
    ttls: Sequence[float], arrival_rate: float
) -> list[tuple[float, float]]:
    """(TTL, analytic hit rate) pairs for a sweep — the ablation bench."""
    return [(ttl, analytic_hit_rate(arrival_rate, ttl)) for ttl in ttls]


def diminishing_returns_ttl(
    arrival_rate: float, target_fraction: float = 0.9
) -> float:
    """The TTL at which caching reaches ``target_fraction`` of its maximum.

    Since hit rate → 1 as TTL → ∞, this is the T with
    λT/(1+λT) = target, i.e. T = target / (λ (1 - target)).  For typical
    per-resolver demand this lands well under an hour — Jung et al.'s
    "most of the benefits by 1000 s" observation.
    """
    if not 0 < target_fraction < 1:
        raise ValueError("target_fraction must be in (0, 1)")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    return target_fraction / (arrival_rate * (1.0 - target_fraction))


def latency_model(
    arrival_rate: float,
    ttl: float,
    hit_latency_ms: float,
    miss_latency_ms: float,
) -> float:
    """Expected per-query latency given the hit rate — ties the hit-rate
    model to the paper's latency results (§6.2)."""
    rate = analytic_hit_rate(arrival_rate, ttl)
    return rate * hit_latency_ms + (1.0 - rate) * miss_latency_ms
