"""Query interarrival analysis (paper §3.4, Figures 3 and 4).

Operates on the (resolver, qname) → sorted timestamps grouping produced by
:meth:`repro.server.querylog.QueryLog.by_group`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: The paper filters queries closer than 2 s as retransmissions (Fig. 3).
RETRANSMISSION_THRESHOLD = 2.0


def interarrivals(timestamps: Sequence[float]) -> list[float]:
    """Successive gaps within one group's sorted timestamps."""
    return [b - a for a, b in zip(timestamps, timestamps[1:])]


def filter_retransmissions(
    timestamps: Sequence[float], threshold: float = RETRANSMISSION_THRESHOLD
) -> list[float]:
    """Drop queries arriving within ``threshold`` of the previous one."""
    kept: list[float] = []
    for timestamp in timestamps:
        if kept and timestamp - kept[-1] <= threshold:
            continue
        kept.append(timestamp)
    return kept


def queries_per_group(
    groups: dict[tuple[str, object], list[float]],
    filter_retrans: bool = False,
) -> list[int]:
    """Query counts per group — the x-axis of Figure 3."""
    counts: list[int] = []
    for timestamps in groups.values():
        if filter_retrans:
            counts.append(len(filter_retransmissions(timestamps)))
        else:
            counts.append(len(timestamps))
    return counts


def min_interarrival_per_group(
    groups: dict[tuple[str, object], list[float]],
) -> list[float]:
    """Minimum interarrival per multi-query group — Figure 4's sample."""
    minima: list[float] = []
    for timestamps in groups.values():
        gaps = interarrivals(timestamps)
        if gaps:
            minima.append(min(gaps))
    return minima


def hourly_bumps(minima: Iterable[float], hour: float = 3600.0, tolerance: float = 0.05) -> dict[int, int]:
    """Count minima near multiples of one hour (the Figure 4 "bumps").

    Returns {multiple: count} for multiples 1..24; a gap g counts toward
    multiple k when |g - k*hour| <= tolerance * hour.
    """
    bumps: dict[int, int] = {}
    for gap in minima:
        k = round(gap / hour)
        if 1 <= k <= 24 and abs(gap - k * hour) <= tolerance * hour:
            bumps[k] = bumps.get(k, 0) + 1
    return bumps
