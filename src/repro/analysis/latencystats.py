"""Latency statistics (paper §5.3 and §6.2).

Summaries are in milliseconds, matching how the paper reports RTTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.cdf import ECDF
from repro.net.topology import Region


@dataclass(frozen=True)
class LatencySummary:
    """Quantiles of one latency distribution, in milliseconds."""

    n: int
    median: float
    p25: float
    p75: float
    p95: float
    p99: float
    mean: float

    def as_row(self) -> list[str]:
        return [
            str(self.n),
            f"{self.median:.1f}",
            f"{self.p25:.1f}",
            f"{self.p75:.1f}",
            f"{self.p95:.1f}",
            f"{self.p99:.1f}",
            f"{self.mean:.1f}",
        ]


def latency_summary(rtts_ms: Iterable[float]) -> Optional[LatencySummary]:
    """Summarize a latency sample (ms); None on an empty sample."""
    cdf = ECDF(rtts_ms)
    if len(cdf) == 0:
        return None
    return LatencySummary(
        n=len(cdf),
        median=cdf.quantile(0.5),
        p25=cdf.quantile(0.25),
        p75=cdf.quantile(0.75),
        p95=cdf.quantile(0.95),
        p99=cdf.quantile(0.99),
        mean=cdf.mean,
    )


def regional_summaries(
    rtts_by_region: dict[Region, list[float]],
) -> dict[Region, LatencySummary]:
    """Per-region summaries (Figure 10b's panels)."""
    out: dict[Region, LatencySummary] = {}
    for region in Region:
        sample = rtts_by_region.get(region, [])
        summary = latency_summary(sample)
        if summary is not None:
            out[region] = summary
    return out


def improvement_factor(before_ms: Iterable[float], after_ms: Iterable[float]) -> float:
    """Ratio of medians, before/after — ">1" means the change helped."""
    before = ECDF(before_ms)
    after = ECDF(after_ms)
    if len(before) == 0 or len(after) == 0:
        raise ValueError("empty latency sample")
    if after.median == 0:
        return float("inf")
    return before.median / after.median
