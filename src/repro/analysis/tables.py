"""Text renderers for the benchmark harness.

The harness prints the same rows and series the paper's tables and figures
report; these helpers render aligned ASCII tables, CDF sketches, and
timeseries bars so a bench run is readable on its own.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.analysis.cdf import ECDF


class Table:
    """A fixed-column ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        row = [str(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("-+-".join("-" * width for width in widths))
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_cdf(
    samples: dict[str, Iterable[float]],
    title: str = "",
    xlabel: str = "value",
    markers: Sequence[float] = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99),
    unit: str = "",
) -> str:
    """Render one or more CDFs as a quantile table (the 'figure')."""
    table = Table(
        ["series", "n", *[f"p{int(q * 100)}" for q in markers]],
        title=title or f"CDF of {xlabel}",
    )
    for label, values in samples.items():
        cdf = ECDF(values)
        if len(cdf) == 0:
            table.add_row(label, 0, *["-"] * len(markers))
            continue
        cells = [f"{cdf.quantile(q):.4g}{unit}" for q in markers]
        table.add_row(label, len(cdf), *cells)
    return table.render()


def render_cdf_plot(
    samples: dict[str, Iterable[float]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
) -> str:
    """Draw one or more CDF step curves as an ASCII plot.

    X is the value axis (log-scaled by default, like the paper's TTL
    figures), Y is the cumulative fraction.  Each series gets a marker
    character; overlapping cells show the later series.
    """
    import math

    cdfs = {label: ECDF(values) for label, values in samples.items()}
    cdfs = {label: cdf for label, cdf in cdfs.items() if len(cdf)}
    if not cdfs:
        return (title or "CDF") + "\n(no data)"

    lo = min(cdf.min for cdf in cdfs.values())
    hi = max(cdf.max for cdf in cdfs.values())
    if log_x:
        lo = max(lo, 1e-9)
        hi = max(hi, lo * 1.0001)

    def x_of(column: int) -> float:
        fraction = column / max(1, width - 1)
        if log_x:
            return math.exp(
                math.log(lo) + fraction * (math.log(hi) - math.log(lo))
            )
        return lo + fraction * (hi - lo)

    grid = [[" "] * width for _ in range(height)]
    markers = "#*+@%o"
    for marker, (label, cdf) in zip(markers, cdfs.items()):
        for column in range(width):
            y = cdf.fraction_below(x_of(column))
            row = height - 1 - min(height - 1, int(y * (height - 1) + 0.5))
            grid[row][column] = marker

    lines = [title or "CDF"]
    lines.append(
        "  ".join(f"{m}={label}" for m, label in zip(markers, cdfs))
    )
    for row_index, row in enumerate(grid):
        y_label = 1.0 - row_index / (height - 1)
        lines.append(f"{y_label:4.2f} |{''.join(row)}|")
    left = f"{lo:.3g}"
    right = f"{hi:.3g}"
    lines.append("     +" + "-" * width + "+")
    lines.append(
        "      " + left + " " * max(1, width - len(left) - len(right)) + right
        + ("  (log x)" if log_x else "")
    )
    return "\n".join(lines)


def render_timeseries(
    series: dict[str, dict[int, int]],
    bin_seconds: float = 600.0,
    title: str = "",
    max_width: int = 40,
) -> str:
    """Render per-bin counts for multiple series as horizontal bars.

    This is the text rendering of the paper's Figure 6/7: one row per time
    bin, one bar segment per series (e.g. old vs new server).
    """
    if not series:
        return (title or "timeseries") + "\n(no data)"
    all_bins = sorted({b for bins in series.values() for b in bins})
    peak = max(
        (count for bins in series.values() for count in bins.values()), default=1
    )
    labels = list(series)
    lines = [title or "timeseries"]
    legend = "  ".join(
        f"{symbol}={label}" for symbol, label in zip("#*+@%", labels)
    )
    lines.append(f"bins of {bin_seconds:.0f}s; {legend}")
    for bin_index in all_bins:
        t_minutes = bin_index * bin_seconds / 60.0
        segments = []
        counts = []
        for symbol, label in zip("#*+@%", labels):
            count = series[label].get(bin_index, 0)
            width = int(round(count / peak * max_width))
            segments.append(symbol * width)
            counts.append(f"{label}:{count}")
        lines.append(f"t={t_minutes:6.0f}m |{''.join(segments):<{max_width}}| " + " ".join(counts))
    return "\n".join(lines)


def fraction(value: float) -> str:
    """Render a fraction as a percentage string."""
    return f"{value * 100:.1f}%"


def paper_vs_measured(
    title: str,
    rows: list[tuple[str, object, object]],
) -> str:
    """The EXPERIMENTS.md-style comparison block: metric, paper, ours."""
    table = Table(["metric", "paper", "measured"], title=title)
    for metric, paper, measured in rows:
        table.add_row(metric, paper, measured)
    return table.render()
