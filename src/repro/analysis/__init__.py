"""Analysis pipeline: CDFs, centricity classification, interarrivals,
latency statistics, and text renderers for tables and figures."""

from repro.analysis.cdf import ECDF
from repro.analysis.centricity import (
    CentricityBreakdown,
    classify_active_ttls,
    classify_passive_groups,
)
from repro.analysis.hitrate import analytic_hit_rate, simulate_hit_rate
from repro.analysis.interarrival import (
    interarrivals,
    min_interarrival_per_group,
    queries_per_group,
)
from repro.analysis.latencystats import LatencySummary, latency_summary, regional_summaries
from repro.analysis.tables import (
    Table,
    render_cdf,
    render_cdf_plot,
    render_timeseries,
)

__all__ = [
    "CentricityBreakdown",
    "ECDF",
    "analytic_hit_rate",
    "simulate_hit_rate",
    "LatencySummary",
    "Table",
    "classify_active_ttls",
    "classify_passive_groups",
    "interarrivals",
    "latency_summary",
    "min_interarrival_per_group",
    "queries_per_group",
    "regional_summaries",
    "render_cdf",
    "render_cdf_plot",
    "render_timeseries",
]
