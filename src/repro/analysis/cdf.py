"""Empirical cumulative distribution functions.

Every TTL and latency figure in the paper is a CDF; :class:`ECDF` provides
the quantile and fraction-below views those figures plot, plus a compact
sampler used by the text renderers.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence


class ECDF:
    """An empirical CDF over a sample of numbers."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values = sorted(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> Sequence[float]:
        return self._values

    def fraction_below(self, x: float) -> float:
        """P(X <= x) — the y-value of the CDF at x."""
        if not self._values:
            raise ValueError("empty ECDF")
        return bisect.bisect_right(self._values, x) / len(self._values)

    def fraction_strictly_below(self, x: float) -> float:
        """P(X < x)."""
        if not self._values:
            raise ValueError("empty ECDF")
        return bisect.bisect_left(self._values, x) / len(self._values)

    def fraction_at(self, x: float) -> float:
        """P(X == x) — spotting spikes like the 21599 s capping plateau."""
        return self.fraction_below(x) - self.fraction_strictly_below(x)

    def quantile(self, q: float) -> float:
        """The q-th quantile, 0 <= q <= 1 (nearest-rank)."""
        if not self._values:
            raise ValueError("empty ECDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if q == 0.0:
            return self._values[0]
        rank = max(0, min(len(self._values) - 1, int(q * len(self._values) + 0.5) - 1))
        return self._values[rank]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        if not self._values:
            raise ValueError("empty ECDF")
        return self._values[0]

    @property
    def max(self) -> float:
        if not self._values:
            raise ValueError("empty ECDF")
        return self._values[-1]

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("empty ECDF")
        return sum(self._values) / len(self._values)

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """(x, P(X<=x)) pairs, downsampled for plotting/rendering."""
        if not self._values:
            return []
        n = len(self._values)
        step = max(1, n // max_points)
        pts = [
            (self._values[i], (i + 1) / n) for i in range(0, n, step)
        ]
        if pts[-1][0] != self._values[-1]:
            pts.append((self._values[-1], 1.0))
        return pts

    def describe(self, quantiles: Sequence[float] = (0.25, 0.5, 0.75, 0.95, 0.99)) -> dict[str, float]:
        out = {"n": float(len(self._values)), "mean": self.mean, "min": self.min, "max": self.max}
        for q in quantiles:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out
