"""Parent/child centricity classification.

Active view (§3.2/§3.3): classify each observed TTL against the known
parent and child values.  A response at or below the child TTL is
child-centric; one above the child TTL (up to the parent's) is
parent-centric; a response exactly at a known cap (21599 s) is capped.

Passive view (§3.4): classify (resolver, qname) groups at an authoritative
server by query count and interarrival — groups re-querying well before
the parent TTL must be honouring the (shorter) child TTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence


@dataclass
class CentricityBreakdown:
    """Fractions of answers/groups per centricity class."""

    total: int = 0
    child: int = 0
    parent: int = 0
    capped: int = 0
    other: int = 0
    full_parent_ttl: int = 0  # answers showing the parent TTL uncut

    def fraction(self, count: int) -> float:
        return count / self.total if self.total else 0.0

    @property
    def child_fraction(self) -> float:
        return self.fraction(self.child)

    @property
    def parent_fraction(self) -> float:
        return self.fraction(self.parent)

    @property
    def capped_fraction(self) -> float:
        return self.fraction(self.capped)

    @property
    def full_parent_fraction(self) -> float:
        return self.fraction(self.full_parent_ttl)

    def as_dict(self) -> dict[str, float]:
        return {
            "total": self.total,
            "child": self.child_fraction,
            "parent": self.parent_fraction,
            "capped": self.capped_fraction,
            "other": self.fraction(self.other),
            "full_parent_ttl": self.full_parent_fraction,
        }


def classify_active_ttls(
    ttls: Iterable[int],
    parent_ttl: int,
    child_ttl: int,
    caps: Sequence[int] = (21599,),
) -> CentricityBreakdown:
    """Classify observed answer TTLs (the §3.2 methodology).

    Assumes ``child_ttl < parent_ttl`` (the interesting configuration the
    paper picks its targets for).  Responses can show any *remaining* TTL
    up to the configured value, so classes are ranges, not points.
    """
    if child_ttl >= parent_ttl:
        raise ValueError(
            f"classification needs child_ttl < parent_ttl, got {child_ttl} >= {parent_ttl}"
        )
    breakdown = CentricityBreakdown()
    for ttl in ttls:
        breakdown.total += 1
        if ttl in caps and child_ttl < ttl:
            breakdown.capped += 1
        elif ttl <= child_ttl:
            breakdown.child += 1
        elif ttl <= parent_ttl:
            breakdown.parent += 1
            if ttl == parent_ttl:
                breakdown.full_parent_ttl += 1
        else:
            breakdown.other += 1
    return breakdown


def classify_capped_or_child(
    ttls: Iterable[int],
    parent_ttl: int,
    child_ttl: int,
    cap: int = 21599,
) -> CentricityBreakdown:
    """Variant for the google.co case where child > parent (§3.3).

    There, answers *above the cap* must come from the child (an uncapped
    child TTL of 4 days cannot decay below 21599 s within the experiment's
    hour); answers in ``(parent_ttl, cap]`` come from capping resolvers
    (fresh caps show exactly 21599 s, warm caches the remaining time); and
    answers at or below the parent TTL are parent-shaped (the paper reports
    "about 9 % ... a TTL of exactly 900 s, suggesting a fresh value from
    the parent").
    """
    if child_ttl <= parent_ttl:
        raise ValueError(
            f"this variant needs child_ttl > parent_ttl, got {child_ttl} <= {parent_ttl}"
        )
    if not parent_ttl < cap < child_ttl:
        raise ValueError(f"cap {cap} must fall between parent and child TTLs")
    breakdown = CentricityBreakdown()
    for ttl in ttls:
        breakdown.total += 1
        if ttl > cap:
            breakdown.child += 1
        elif ttl > parent_ttl:
            breakdown.capped += 1
        else:
            breakdown.parent += 1
            if ttl == parent_ttl:
                breakdown.full_parent_ttl += 1
    return breakdown


@dataclass
class PassiveBreakdown:
    """The §3.4 authoritative-side view."""

    groups: int = 0
    multi_query_groups: int = 0  # child-centric signal
    single_query_groups: int = 0
    #: Single-query resolvers also seen multi-querying other names —
    #: evidence they are child-centric after all (paper finds ~14 %).
    single_but_child_elsewhere: int = 0

    @property
    def multi_fraction(self) -> float:
        return self.multi_query_groups / self.groups if self.groups else 0.0

    @property
    def single_fraction(self) -> float:
        return self.single_query_groups / self.groups if self.groups else 0.0


def classify_passive_groups(
    groups: dict[tuple[str, object], list[float]],
) -> PassiveBreakdown:
    """Classify authoritative-side (resolver, qname) groups (§3.4)."""
    breakdown = PassiveBreakdown(groups=len(groups))
    multi_resolvers: set[str] = set()
    single_groups: list[tuple[str, object]] = []
    for (resolver, qname), timestamps in groups.items():
        if len(timestamps) > 1:
            breakdown.multi_query_groups += 1
            multi_resolvers.add(resolver)
        else:
            breakdown.single_query_groups += 1
            single_groups.append((resolver, qname))
    single_resolvers = {resolver for resolver, _ in single_groups}
    breakdown.single_but_child_elsewhere = sum(
        1 for resolver in single_resolvers if resolver in multi_resolvers
    )
    return breakdown


def sticky_vps(
    per_vp_answers: dict[str, list[tuple[float, tuple[str, ...]]]],
    old_answer: str,
    first_round_end: float,
) -> set[str]:
    """VPs that answered in round one and *only* ever saw the old server.

    The paper's Table 4 definition: "send queries on the first round of
    measurements ... and always contact the same authoritative name
    server, even when TTLs expire."
    """
    sticky: set[str] = set()
    for vp_id, rows in per_vp_answers.items():
        if not rows:
            continue
        first = min(timestamp for timestamp, _ in rows)
        if first > first_round_end:
            continue
        answers = {answer for _, answers in rows for answer in answers}
        if answers == {old_answer}:
            sticky.add(vp_id)
    return sticky
