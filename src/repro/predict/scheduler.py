"""The refresh-ahead scheduler.

Jobs are ``(qname, qtype)`` refreshes pinned to a *due* sim time; a
min-heap orders them and :meth:`RefreshScheduler.pump` executes every
due job through a caller-supplied callback.  Three properties matter:

- **off the client path** — nothing here runs inside a client's
  ``resolve()`` answer; the resolver pumps at the *start* of a call (and
  the live frontend pumps from a background task), so refresh latency is
  never charged to the triggering client;
- **storm-safe** — a token bucket caps executed refreshes at
  ``max_refresh_per_s`` (depth ``refresh_burst``); jobs arriving beyond
  the budget are *dropped and counted*, not queued, so a TTL cliff or a
  fault-injected outage can never turn the scheduler into an amplifier.
  Failed refreshes additionally back the key off exponentially, on top
  of whatever :class:`repro.net.transport.BackoffPolicy` the fabric
  already applies per query;
- **deterministic** — jobs execute in (due, submission) order with
  ``now`` equal to their due time, so a pump at sim time 400 executing a
  job due at 310 behaves exactly as if it had run at 310 (every cache
  and network call takes an explicit timestamp).  Serial and sharded
  campaigns therefore see identical refresh traffic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, TYPE_CHECKING

from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.metrics.registry import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    log_buckets,
)

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry

#: Refresh lead time (seconds before expiry) buckets: 0.1 s .. 100 000 s.
LEAD_BUCKETS_S = log_buckets(0.1, 100_000.0, per_decade=2)

#: A refresh callback: (qname, qtype, sim_now) -> success.
RefreshFn = Callable[[Name, RdataType, float], bool]

JobKey = tuple[Name, RdataType]


class RefreshScheduler:
    """Budgeted, deduplicated refresh jobs on the sim timeline."""

    def __init__(
        self,
        refresh: RefreshFn,
        max_refresh_per_s: Optional[float] = None,
        refresh_burst: int = 1,
        failure_backoff_s: float = 30.0,
        failure_backoff_cap_s: float = 3600.0,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        """``max_refresh_per_s``: ``None`` means unbudgeted (the plain
        on-hit prefetch archetype); ``0`` suppresses every job."""
        if refresh_burst < 1:
            raise ValueError(f"refresh_burst must be >= 1, not {refresh_burst}")
        self._refresh = refresh
        self.max_refresh_per_s = max_refresh_per_s
        self.refresh_burst = refresh_burst
        self.failure_backoff_s = failure_backoff_s
        self.failure_backoff_cap_s = failure_backoff_cap_s
        #: (due, seq, key); validated against ``_pending`` on pop.
        self._heap: list[tuple[float, int, JobKey]] = []
        #: key -> (due, kind, expires_at): the one live job per key.
        self._pending: dict[JobKey, tuple[float, str, Optional[float]]] = {}
        self._seq = 0
        self._failures: dict[JobKey, int] = {}
        self._blocked_until: dict[JobKey, float] = {}
        self._tokens = float(refresh_burst)
        self._token_time: Optional[float] = None
        if metrics is not None:
            self._m_refreshes = metrics.counter("predict.refreshes")
            self._m_revalidations = metrics.counter("predict.revalidations")
            self._m_suppressed = metrics.counter("predict.refresh_suppressed")
            self._m_failed = metrics.counter("predict.refresh_failures")
            self._m_lead = metrics.histogram("predict.refresh_lead_s", LEAD_BUCKETS_S)
        else:
            self._m_refreshes = self._m_revalidations = NULL_COUNTER
            self._m_suppressed = self._m_failed = NULL_COUNTER
            self._m_lead = NULL_HISTOGRAM

    def __len__(self) -> int:
        return len(self._pending)

    # -- submission ----------------------------------------------------------
    def schedule(
        self,
        qname: Name,
        qtype: RdataType,
        due: float,
        expires_at: Optional[float] = None,
        kind: str = "refresh",
    ) -> bool:
        """Submit a refresh for ``(qname, qtype)`` at sim time ``due``.

        One job per key: a resubmission only moves an existing job
        *earlier*.  Keys in failure backoff have their due time clamped
        forward to the backoff deadline instead of being refused, so a
        flapping upstream is retried — just not hammered.  Returns
        whether the pending set changed.
        """
        key: JobKey = (qname, qtype)
        blocked = self._blocked_until.get(key)
        if blocked is not None and due < blocked:
            due = blocked
        existing = self._pending.get(key)
        if existing is not None and existing[0] <= due:
            return False
        self._pending[key] = (due, kind, expires_at)
        self._seq += 1
        heapq.heappush(self._heap, (due, self._seq, key))
        return True

    def cancel(self, qname: Name, qtype: RdataType) -> None:
        """Drop any pending job for the key (heap records lazily expire)."""
        self._pending.pop((qname, qtype), None)

    # -- execution -----------------------------------------------------------
    def _refill(self, now: float) -> None:
        if self.max_refresh_per_s is None:
            return
        if self._token_time is None:
            self._token_time = now
            return
        elapsed = now - self._token_time
        if elapsed > 0:
            self._tokens = min(
                float(self.refresh_burst),
                self._tokens + elapsed * self.max_refresh_per_s,
            )
            self._token_time = now

    def pump(self, now: float) -> int:
        """Execute every job due at or before ``now``; returns how many ran.

        Jobs run back-dated to their due time, in (due, submission)
        order.  Over-budget jobs are dropped (and counted) — the next
        client hit or expiry-feed pass will resubmit if the name is
        still hot.
        """
        executed = 0
        heap = self._heap
        while heap and heap[0][0] <= now:
            due, _, key = heapq.heappop(heap)
            pending = self._pending.get(key)
            if pending is None or pending[0] != due:
                continue  # cancelled or superseded by an earlier due time
            del self._pending[key]
            _, kind, expires_at = pending
            self._refill(due)
            if self.max_refresh_per_s is not None:
                if self._tokens < 1.0:
                    self._m_suppressed.inc()
                    continue
                self._tokens -= 1.0
            ok = self._refresh(key[0], key[1], due)
            executed += 1
            if kind == "revalidate":
                self._m_revalidations.inc()
            else:
                self._m_refreshes.inc()
            if expires_at is not None:
                self._m_lead.observe(max(0.0, expires_at - due))
            if ok:
                self._failures.pop(key, None)
                self._blocked_until.pop(key, None)
            else:
                failures = self._failures.get(key, 0) + 1
                self._failures[key] = failures
                backoff = min(
                    self.failure_backoff_s * (2.0 ** (failures - 1)),
                    self.failure_backoff_cap_s,
                )
                self._blocked_until[key] = due + backoff
                self._m_failed.inc()
        return executed

    def clear(self) -> None:
        """Forget every job and all backoff state (resolver restart)."""
        self._heap.clear()
        self._pending.clear()
        self._failures.clear()
        self._blocked_until.clear()
        self._tokens = float(self.refresh_burst)
        self._token_time = None
