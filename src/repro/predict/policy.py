"""Knobs for predictive caching.

A :class:`PredictPolicy` bundles one resolver's choices for the three
cooperating mechanisms in :mod:`repro.predict`:

- the **popularity tracker** (``track_top_k``, ``min_hits``) decides
  which names are worth keeping warm,
- the **refresh-ahead scheduler** (``lead_fraction``, ``min_lead_s``,
  ``max_refresh_per_s``, ``refresh_burst``, the failure-backoff knobs)
  decides when hot names are re-resolved and how hard the resolver may
  lean on authoritatives doing so,
- **RFC 8767 stale-while-revalidate** (``serve_stale_while_revalidate``,
  ``stale_answer_ttl``, ``max_stale_s``) decides whether a miss with
  stale data answers immediately while an asynchronous revalidation
  runs.

The policy is frozen and round-trips through plain-JSON payloads so
campaign fingerprints (see :mod:`repro.runner.campaigns`) can include it
without hashing Python object identity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional


@dataclass(frozen=True)
class PredictPolicy:
    """One resolver's predictive-caching configuration."""

    #: Tracker capacity: how many (qname, qtype) keys are counted.
    track_top_k: int = 256
    #: Arrivals before a key counts as hot (refresh-ahead eligible).
    min_hits: int = 2
    #: Tracker aging window, seconds: every window the tracker halves all
    #: counts and drops keys that reach zero, so yesterday's hot set ages
    #: out instead of staying refresh-eligible forever.  ``None`` = never
    #: decay (the pre-aging behaviour).
    popularity_window_s: Optional[float] = None
    #: Refresh when remaining lifetime falls below this fraction of the
    #: original lifetime (mirrors the on-hit prefetch window).
    lead_fraction: float = 0.1
    #: ...but always leave at least this many seconds of lead, so very
    #: short TTLs still get refreshed before they expire.
    min_lead_s: float = 1.0
    #: How far ahead of now the expiry feed looks for refresh candidates.
    feed_horizon_s: float = 60.0
    #: Token-bucket budget on scheduler-issued refreshes (per sim second).
    #: The budget is what keeps refresh-ahead from storming
    #: authoritatives; 0 disables refreshes entirely.
    max_refresh_per_s: float = 10.0
    #: Token-bucket depth: refreshes that may burst back-to-back.
    refresh_burst: int = 20
    #: RFC 8767: answer a miss from stale data immediately (capped TTL)
    #: and revalidate asynchronously, instead of SERVFAIL-or-wait.
    serve_stale_while_revalidate: bool = True
    #: TTL stamped on stale answers (RFC 8767 §5 recommends <= 30 s).
    stale_answer_ttl: int = 30
    #: How long past expiry data may still be served (RFC 8767 §5
    #: suggests 1-3 days; we default to one).
    max_stale_s: float = 86400.0
    #: First per-key backoff after a failed refresh; doubles per failure.
    failure_backoff_s: float = 30.0
    #: Ceiling on the per-key failure backoff.
    failure_backoff_cap_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.track_top_k < 1:
            raise ValueError(f"track_top_k must be >= 1, not {self.track_top_k}")
        if self.min_hits < 1:
            raise ValueError(f"min_hits must be >= 1, not {self.min_hits}")
        if self.popularity_window_s is not None and self.popularity_window_s <= 0:
            raise ValueError(
                f"popularity_window_s must be > 0, not {self.popularity_window_s}"
            )
        if not 0.0 < self.lead_fraction < 1.0:
            raise ValueError(
                f"lead_fraction must be in (0, 1), not {self.lead_fraction}"
            )
        if self.min_lead_s < 0:
            raise ValueError(f"min_lead_s cannot be negative ({self.min_lead_s})")
        if self.feed_horizon_s <= 0:
            raise ValueError(
                f"feed_horizon_s must be positive, not {self.feed_horizon_s}"
            )
        if self.max_refresh_per_s < 0:
            raise ValueError(
                f"max_refresh_per_s cannot be negative ({self.max_refresh_per_s})"
            )
        if self.refresh_burst < 1:
            raise ValueError(f"refresh_burst must be >= 1, not {self.refresh_burst}")
        if self.stale_answer_ttl < 0:
            raise ValueError(
                f"stale_answer_ttl cannot be negative ({self.stale_answer_ttl})"
            )
        if self.max_stale_s < 0:
            raise ValueError(f"max_stale_s cannot be negative ({self.max_stale_s})")
        if self.failure_backoff_s < 0:
            raise ValueError(
                f"failure_backoff_s cannot be negative ({self.failure_backoff_s})"
            )
        if self.failure_backoff_cap_s < self.failure_backoff_s:
            raise ValueError(
                f"failure_backoff_cap_s {self.failure_backoff_cap_s} below "
                f"failure_backoff_s {self.failure_backoff_s}"
            )

    def with_(self, **overrides: object) -> "PredictPolicy":
        """A copy with fields replaced (dataclasses.replace shorthand)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    # -- payload round-trip --------------------------------------------------
    def to_payload(self) -> dict:
        """Plain-JSON form, stable across processes (fingerprint-safe)."""
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_payload(cls, payload: dict) -> "PredictPolicy":
        known = {field.name for field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown PredictPolicy fields: {sorted(unknown)}")
        return cls(**payload)

    def describe(self) -> str:
        """Short label used in experiment outputs."""
        parts = [f"top{self.track_top_k}", f"lead{self.lead_fraction:g}"]
        if self.popularity_window_s is not None:
            parts.append(f"win{self.popularity_window_s:g}s")
        if self.max_refresh_per_s:
            parts.append(f"budget{self.max_refresh_per_s:g}/s")
        if self.serve_stale_while_revalidate:
            parts.append("swr")
        return "predict(" + ",".join(parts) + ")"
