"""Predictive caching: keep hot names warm off the client path.

The paper's §7 gestures at renewal strategies ("pre-fetching before
expiration"); this package makes them measurable.  Three cooperating
pieces:

- :class:`PopularityTracker` — a bounded, deterministic space-saving
  top-K sketch deciding *which* names are worth keeping warm,
- :class:`RefreshScheduler` — budgeted refresh jobs on the sim clock
  deciding *when* hot names are re-resolved (shortly before expiry,
  never on the client path, never past the refresh budget),
- RFC 8767 stale-while-revalidate — implemented in
  :mod:`repro.resolver.recursive` behind :class:`PredictPolicy`: a miss
  with usable stale data answers immediately with a capped TTL while an
  asynchronous revalidation job repopulates the cache.

Everything is driven by explicit sim timestamps, so serial and sharded
campaigns see byte-identical refresh traffic; :mod:`repro.serve` drives
the same machinery live through its :class:`WallClockBridge`.
"""

from repro.predict.policy import PredictPolicy
from repro.predict.popularity import PopularityTracker
from repro.predict.scheduler import LEAD_BUCKETS_S, RefreshScheduler

__all__ = [
    "PredictPolicy",
    "PopularityTracker",
    "RefreshScheduler",
    "LEAD_BUCKETS_S",
]
