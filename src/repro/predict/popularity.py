"""Bounded, deterministic popularity tracking.

The tracker is a *space-saving* top-K sketch (Metwally et al.) over
arbitrary hashable keys — here, ``(qname, qtype)`` pairs.  It admits
every arrival, but holds at most ``capacity`` keys: when full, the key
with the smallest count is evicted and the newcomer inherits that count
as its *error* bound, so ``count - error`` is a guaranteed lower bound
on the key's true arrivals.  Hotness tests use the guaranteed count, so
a one-hit wonder that inherited a large count is never mistaken for a
hot name.

With a ``window_s``, the tracker ages: every window boundary halves all
counts and errors and drops keys that reach zero, so yesterday's hot set
decays out instead of squatting in the sketch forever (exponential decay
with a one-window half-life — the standard sliding-window treatment for
space-saving sketches).  Aging only ever shrinks the tracked set; it
never resurrects an evicted key or promotes a cold one.

Everything is deterministic: ties break by admission order, no RNG, no
wall clock — two trackers fed the same arrival sequence are equal, which
is what the serial-vs-parallel byte-identity contract requires.  The
count structure is a lazy min-heap in the style of the resolver cache's
expiry heap: counts only grow *between agings*, so a popped record whose
count matches the live count *is* the minimum; stale records are
discarded on pop, and :meth:`age` rebuilds the heap wholesale (counts
just shrank, which the lazy invariant cannot absorb incrementally).
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterator, Optional

#: Heap compaction threshold, in multiples of capacity.
_HEAP_SLACK = 8


class PopularityTracker:
    """Space-saving top-K arrival counter."""

    def __init__(
        self,
        capacity: int,
        min_hits: int = 2,
        window_s: Optional[float] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, not {capacity}")
        if min_hits < 1:
            raise ValueError(f"min_hits must be >= 1, not {min_hits}")
        if window_s is not None and window_s <= 0:
            raise ValueError(f"window_s must be > 0, not {window_s}")
        self.capacity = capacity
        self.min_hits = min_hits
        #: Aging window; ``None`` = never decay (counts accumulate forever).
        self.window_s = window_s
        self._window_started: Optional[float] = None
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        self._first_seen: dict[Hashable, float] = {}
        #: Lazy min-heap of (count, seq, key); validated on pop.
        self._heap: list[tuple[int, int, Hashable]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def _push(self, key: Hashable, count: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (count, self._seq, key))
        if len(self._heap) > _HEAP_SLACK * self.capacity:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live counts, dropping stale records."""
        self._heap = [
            (count, index, key)
            for index, (key, count) in enumerate(self._counts.items())
        ]
        heapq.heapify(self._heap)
        self._seq = len(self._heap)

    def _evict_min(self) -> int:
        """Remove the key with the smallest count; returns that count."""
        while True:
            count, _, key = heapq.heappop(self._heap)
            live = self._counts.get(key)
            if live is None or live != count:
                continue  # stale record (key evicted or count since grown)
            del self._counts[key]
            del self._errors[key]
            del self._first_seen[key]
            return count

    # -- aging ---------------------------------------------------------------
    def age(self, now: float) -> int:
        """Halve every count and error, dropping keys that reach zero.

        Returns the number of keys dropped.  Called automatically from
        :meth:`record` at window boundaries (``window_s``); callable
        directly for trackers aged on an external schedule.  Only ever
        removes or diminishes: a key absent before aging is absent after,
        and no key's guaranteed count grows — so aging can never
        resurrect an evicted key or promote a cold one to hot.
        """
        self._window_started = now
        if not self._counts:
            return 0
        dropped = 0
        for key in list(self._counts):
            count = self._counts[key] // 2
            if count <= 0:
                del self._counts[key]
                del self._errors[key]
                del self._first_seen[key]
                dropped += 1
            else:
                self._counts[key] = count
                self._errors[key] = self._errors[key] // 2
        # Counts just shrank, which the lazy heap's counts-only-grow
        # invariant cannot absorb: rebuild from the survivors.
        self._compact()
        return dropped

    def _maybe_age(self, now: float) -> None:
        if self.window_s is None:
            return
        if self._window_started is None:
            self._window_started = now
        elif now - self._window_started >= self.window_s:
            self.age(now)

    # -- recording -----------------------------------------------------------
    def record(self, key: Hashable, now: float) -> int:
        """Count one arrival of ``key`` at sim time ``now``; returns the
        key's (possibly overestimated) count."""
        self._maybe_age(now)
        count = self._counts.get(key)
        if count is not None:
            count += 1
            self._counts[key] = count
            self._push(key, count)
            return count
        if len(self._counts) >= self.capacity:
            floor = self._evict_min()
        else:
            floor = 0
        count = floor + 1
        self._counts[key] = count
        self._errors[key] = floor
        self._first_seen[key] = now
        self._push(key, count)
        return count

    # -- queries -------------------------------------------------------------
    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    def guaranteed_count(self, key: Hashable) -> int:
        """Arrivals provably seen for ``key`` (count minus inherited error)."""
        count = self._counts.get(key)
        if count is None:
            return 0
        return count - self._errors[key]

    def is_hot(self, key: Hashable) -> bool:
        """Whether ``key`` has provably arrived at least ``min_hits`` times."""
        return self.guaranteed_count(key) >= self.min_hits

    def rate(self, key: Hashable, now: float) -> float:
        """Guaranteed arrivals per sim second since the key was admitted."""
        guaranteed = self.guaranteed_count(key)
        if guaranteed <= 0:
            return 0.0
        first = self._first_seen[key]
        return guaranteed / max(now - first, 1.0)

    def hot_keys(self) -> Iterator[Hashable]:
        """Tracked keys that pass the hotness test, admission order."""
        for key in self._counts:
            if self.is_hot(key):
                yield key

    # -- snapshot / merge ----------------------------------------------------
    def snapshot(self) -> list[tuple[Hashable, int, int, float]]:
        """The tracked set as ``(key, count, error, first_seen)`` rows,
        admission order.  Rows are plain data; callers that need JSON
        encode the keys themselves."""
        return [
            (key, count, self._errors[key], self._first_seen[key])
            for key, count in self._counts.items()
        ]

    def merge(self, rows: list[tuple[Hashable, int, int, float]]) -> None:
        """Fold another tracker's snapshot in: counts and errors add, first
        seen takes the earlier stamp, then the union is trimmed back to
        capacity by evicting minimum counts (deterministically)."""
        for key, count, error, first_seen in rows:
            if key in self._counts:
                self._counts[key] += count
                self._errors[key] += error
                self._first_seen[key] = min(self._first_seen[key], first_seen)
                self._push(key, self._counts[key])
            else:
                self._counts[key] = count
                self._errors[key] = error
                self._first_seen[key] = first_seen
                self._push(key, count)
        while len(self._counts) > self.capacity:
            self._evict_min()

    def clear(self) -> None:
        self._counts.clear()
        self._errors.clear()
        self._first_seen.clear()
        self._heap.clear()
        self._seq = 0
        self._window_started = None
