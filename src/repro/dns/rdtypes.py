"""Resource-record types and rdata classes.

Implements the record types the paper crawls and measures (§5.1: NS, A,
AAAA, MX, DNSKEY, CNAME) plus SOA (zone apex / negative caching), TXT
(measurement payloads), RRSIG (DNSSEC TTL enclosure, §2) and OPT (EDNS0).

Every rdata class supports text and wire round-trips.  Compression is used
on write only for the types RFC 3597 §4 allows (those defined in RFC 1035).
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass
from typing import Callable, ClassVar

from repro.dns.name import Name
from repro.dns.wire import WireError, WireReader, WireWriter


def _pseudo_member(cls, value: object, prefix: str):
    """RFC 3597 generic names: any 16-bit value becomes a ``TYPE%d``-style
    pseudo-member, so wire decoding of types and classes this module does
    not implement never crashes.  Pseudo-members are cached on the enum,
    making repeated lookups identity-stable."""
    if not isinstance(value, int) or not 0 <= value <= 0xFFFF:
        return None
    member = int.__new__(cls, value)
    member._name_ = f"{prefix}{value}"
    member._value_ = value
    return cls._value2member_map_.setdefault(value, member)


class RdataType(enum.IntEnum):
    """DNS RR TYPE values.

    The named members are the types the paper's experiments exercise;
    every other 16-bit value resolves to an RFC 3597 ``TYPE%d``
    pseudo-member (real clients routinely ask for e.g. HTTPS/65), whose
    rdata is carried opaquely by :class:`OpaqueRdata`.
    """

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    MX = 15
    TXT = 16
    AAAA = 28
    OPT = 41
    RRSIG = 46
    DNSKEY = 48

    @classmethod
    def _missing_(cls, value: object) -> "RdataType | None":
        return _pseudo_member(cls, value, "TYPE")

    @classmethod
    def from_text(cls, text: str) -> "RdataType":
        try:
            return cls[text.upper()]
        except KeyError:
            pass
        if text.upper().startswith("TYPE"):
            try:
                return cls(int(text[4:]))
            except ValueError:
                pass
        raise ValueError(f"unknown RR type {text!r}")


class RdataClass(enum.IntEnum):
    """DNS RR CLASS values.

    Unknown classes decode to ``CLASS%d`` pseudo-members (RFC 3597 §5)
    rather than raising, for the same robustness reason as
    :class:`RdataType`.
    """

    IN = 1
    CH = 3
    ANY = 255

    @classmethod
    def _missing_(cls, value: object) -> "RdataClass | None":
        return _pseudo_member(cls, value, "CLASS")


class Rdata:
    """Base class for typed record data.

    Subclasses are frozen dataclasses so rdata values are hashable and can
    be deduplicated in RRsets and caches.
    """

    rdtype: ClassVar[RdataType]

    def to_text(self) -> str:
        raise NotImplementedError

    def to_wire(self, writer: WireWriter) -> None:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "Rdata":
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()


@dataclass(frozen=True)
class A(Rdata):
    """An IPv4 host address (RFC 1035 §3.4.1)."""

    address: str

    rdtype: ClassVar[RdataType] = RdataType.A

    def __post_init__(self) -> None:
        # Normalize and validate; raises ValueError on garbage.
        object.__setattr__(self, "address", str(ipaddress.IPv4Address(self.address)))

    def to_text(self) -> str:
        return self.address

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(ipaddress.IPv4Address(self.address).packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "A":
        if rdlength != 4:
            raise WireError(f"A rdata must be 4 octets, got {rdlength}")
        return cls(str(ipaddress.IPv4Address(reader.read_bytes(4))))


@dataclass(frozen=True)
class AAAA(Rdata):
    """An IPv6 host address (RFC 3596)."""

    address: str

    rdtype: ClassVar[RdataType] = RdataType.AAAA

    def __post_init__(self) -> None:
        object.__setattr__(self, "address", str(ipaddress.IPv6Address(self.address)))

    def to_text(self) -> str:
        return self.address

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(ipaddress.IPv6Address(self.address).packed)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise WireError(f"AAAA rdata must be 16 octets, got {rdlength}")
        return cls(str(ipaddress.IPv6Address(reader.read_bytes(16))))


@dataclass(frozen=True)
class NS(Rdata):
    """An authoritative name server (RFC 1035 §3.3.11)."""

    target: Name

    rdtype: ClassVar[RdataType] = RdataType.NS

    def __post_init__(self) -> None:
        if not isinstance(self.target, Name):
            object.__setattr__(self, "target", Name(self.target))

    def to_text(self) -> str:
        return str(self.target)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "NS":
        return cls(reader.read_name())


@dataclass(frozen=True)
class CNAME(Rdata):
    """A canonical-name alias (RFC 1035 §3.3.1)."""

    target: Name

    rdtype: ClassVar[RdataType] = RdataType.CNAME

    def __post_init__(self) -> None:
        if not isinstance(self.target, Name):
            object.__setattr__(self, "target", Name(self.target))

    def to_text(self) -> str:
        return str(self.target)

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.target)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "CNAME":
        return cls(reader.read_name())


@dataclass(frozen=True)
class MX(Rdata):
    """A mail exchanger (RFC 1035 §3.3.9)."""

    preference: int
    exchange: Name

    rdtype: ClassVar[RdataType] = RdataType.MX

    def __post_init__(self) -> None:
        if not isinstance(self.exchange, Name):
            object.__setattr__(self, "exchange", Name(self.exchange))

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange}"

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.preference)
        writer.write_name(self.exchange)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "MX":
        return cls(reader.read_u16(), reader.read_name())


@dataclass(frozen=True)
class SOA(Rdata):
    """Start of authority (RFC 1035 §3.3.13).

    The ``minimum`` field bounds negative-answer caching (RFC 2308).
    """

    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int

    rdtype: ClassVar[RdataType] = RdataType.SOA

    def __post_init__(self) -> None:
        if not isinstance(self.mname, Name):
            object.__setattr__(self, "mname", Name(self.mname))
        if not isinstance(self.rname, Name):
            object.__setattr__(self, "rname", Name(self.rname))

    def to_text(self) -> str:
        return (
            f"{self.mname} {self.rname} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.mname)
        writer.write_name(self.rname)
        for field in (self.serial, self.refresh, self.retry, self.expire, self.minimum):
            writer.write_u32(field)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "SOA":
        mname = reader.read_name()
        rname = reader.read_name()
        serial, refresh, retry, expire, minimum = (reader.read_u32() for _ in range(5))
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


@dataclass(frozen=True)
class TXT(Rdata):
    """Descriptive text (RFC 1035 §3.3.14); one or more character strings."""

    strings: tuple[str, ...]

    rdtype: ClassVar[RdataType] = RdataType.TXT

    def __post_init__(self) -> None:
        if isinstance(self.strings, str):
            object.__setattr__(self, "strings", (self.strings,))
        else:
            object.__setattr__(self, "strings", tuple(self.strings))
        for chunk in self.strings:
            if len(chunk.encode("ascii")) > 255:
                raise ValueError("TXT character-string longer than 255 octets")

    def to_text(self) -> str:
        return " ".join(f'"{chunk}"' for chunk in self.strings)

    def to_wire(self, writer: WireWriter) -> None:
        for chunk in self.strings:
            encoded = chunk.encode("ascii")
            writer.write_u8(len(encoded))
            writer.write_bytes(encoded)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "TXT":
        end = reader.offset + rdlength
        strings: list[str] = []
        while reader.offset < end:
            length = reader.read_u8()
            strings.append(reader.read_bytes(length).decode("ascii"))
        if reader.offset != end:
            raise WireError("TXT rdata length mismatch")
        return cls(tuple(strings))


@dataclass(frozen=True)
class DNSKEY(Rdata):
    """A DNSSEC public key (RFC 4034 §2).

    The key material is opaque here — the paper measures DNSKEY *TTLs*, not
    signatures — but the flags/protocol/algorithm framing is faithful.
    """

    flags: int
    protocol: int
    algorithm: int
    key: bytes

    rdtype: ClassVar[RdataType] = RdataType.DNSKEY

    def to_text(self) -> str:
        import base64

        return f"{self.flags} {self.protocol} {self.algorithm} " + base64.b64encode(
            self.key
        ).decode("ascii")

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(self.flags)
        writer.write_u8(self.protocol)
        writer.write_u8(self.algorithm)
        writer.write_bytes(self.key)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "DNSKEY":
        if rdlength < 4:
            raise WireError(f"DNSKEY rdata too short ({rdlength} octets)")
        flags = reader.read_u16()
        protocol = reader.read_u8()
        algorithm = reader.read_u8()
        key = reader.read_bytes(rdlength - 4)
        return cls(flags, protocol, algorithm, key)


@dataclass(frozen=True)
class RRSIG(Rdata):
    """A DNSSEC signature (RFC 4034 §3).

    DNSSEC requires the signed TTL (``original_ttl``) to come from the child
    zone, which is the paper's §2 argument for child-centric resolution.
    Signature bytes are opaque.
    """

    type_covered: RdataType
    algorithm: int
    labels: int
    original_ttl: int
    expiration: int
    inception: int
    key_tag: int
    signer: Name
    signature: bytes

    rdtype: ClassVar[RdataType] = RdataType.RRSIG

    def to_text(self) -> str:
        import base64

        return (
            f"{self.type_covered.name} {self.algorithm} {self.labels} "
            f"{self.original_ttl} {self.expiration} {self.inception} "
            f"{self.key_tag} {self.signer} "
            + base64.b64encode(self.signature).decode("ascii")
        )

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_u16(int(self.type_covered))
        writer.write_u8(self.algorithm)
        writer.write_u8(self.labels)
        writer.write_u32(self.original_ttl)
        writer.write_u32(self.expiration)
        writer.write_u32(self.inception)
        writer.write_u16(self.key_tag)
        # RFC 4034 §3.1.7: the signer's name is never compressed.
        writer.write_name(self.signer, compress=False)
        writer.write_bytes(self.signature)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "RRSIG":
        end = reader.offset + rdlength
        type_covered = RdataType(reader.read_u16())
        algorithm = reader.read_u8()
        labels = reader.read_u8()
        original_ttl = reader.read_u32()
        expiration = reader.read_u32()
        inception = reader.read_u32()
        key_tag = reader.read_u16()
        signer = reader.read_name()
        signature = reader.read_bytes(end - reader.offset)
        return cls(
            type_covered,
            algorithm,
            labels,
            original_ttl,
            expiration,
            inception,
            key_tag,
            signer,
            signature,
        )


@dataclass(frozen=True)
class OPT(Rdata):
    """EDNS0 OPT pseudo-record payload (RFC 6891); options are opaque."""

    options: bytes = b""

    rdtype: ClassVar[RdataType] = RdataType.OPT

    def to_text(self) -> str:
        return self.options.hex() or "-"

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_bytes(self.options)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "OPT":
        return cls(reader.read_bytes(rdlength))


@dataclass(frozen=True)
class OpaqueRdata(Rdata):
    """RFC 3597 opaque rdata for types this module does not implement.

    Carries its concrete type as an *instance* attribute (shadowing the
    class-level marker), so records of unknown type round-trip through the
    wire codec byte-for-byte.  Presentation form is the RFC 3597 §5
    ``\\# <length> <hex>`` generic encoding.
    """

    rdtype: RdataType
    data: bytes = b""

    def to_text(self) -> str:
        if not self.data:
            return "\\# 0"
        return f"\\# {len(self.data)} {self.data.hex()}"

    def to_wire(self, writer: WireWriter) -> None:
        # RFC 3597 §4: unknown rdata is never name-compressed.
        writer.write_bytes(self.data)

    @classmethod
    def from_wire(cls, reader: WireReader, rdlength: int) -> "OpaqueRdata":
        raise NotImplementedError("use read_rdata, which carries the type")


_RDATA_CLASSES: dict[RdataType, type[Rdata]] = {
    RdataType.A: A,
    RdataType.AAAA: AAAA,
    RdataType.NS: NS,
    RdataType.CNAME: CNAME,
    RdataType.MX: MX,
    RdataType.SOA: SOA,
    RdataType.TXT: TXT,
    RdataType.DNSKEY: DNSKEY,
    RdataType.RRSIG: RRSIG,
    RdataType.OPT: OPT,
}


def rdata_class_for(rdtype: RdataType) -> type[Rdata]:
    """The rdata class implementing ``rdtype``; raises for unknown types."""
    try:
        return _RDATA_CLASSES[rdtype]
    except KeyError as exc:
        raise ValueError(f"no rdata implementation for type {rdtype}") from exc


def read_rdata(rdtype: RdataType, reader: WireReader, rdlength: int) -> Rdata:
    """Decode one rdata of ``rdtype`` spanning ``rdlength`` octets.

    Types without a dedicated class decode into :class:`OpaqueRdata`
    (RFC 3597), so a message carrying e.g. an HTTPS record parses cleanly
    instead of crashing the reader.
    """
    start = reader.offset
    implementation = _RDATA_CLASSES.get(rdtype)
    if implementation is None:
        rdata: Rdata = OpaqueRdata(rdtype, reader.read_bytes(rdlength))
    else:
        rdata = implementation.from_wire(reader, rdlength)
    consumed = reader.offset - start
    if consumed != rdlength:
        raise WireError(
            f"{rdtype.name} rdata consumed {consumed} octets, RDLENGTH said {rdlength}"
        )
    return rdata


# Convenience constructor registry for tests and world-building code.
make: dict[str, Callable[..., Rdata]] = {
    "A": A,
    "AAAA": AAAA,
    "NS": NS,
    "CNAME": CNAME,
    "MX": MX,
    "SOA": SOA,
    "TXT": TXT,
    "DNSKEY": DNSKEY,
    "RRSIG": RRSIG,
    "OPT": OPT,
}
