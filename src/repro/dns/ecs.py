"""RFC 7871 EDNS Client Subnet (ECS) option.

ECS lets a recursive resolver tell an authoritative server *where the
client is* — the query carries a truncated client prefix (``family``,
``source-prefix``, address bits), and the answer comes back tagged with a
``scope-prefix`` declaring how wide a subnet the answer is valid for.  A
scope of 0 means "this answer is global" and the resolver caches it
normally; a non-zero scope means the answer must only be served to
clients inside the covered subnet (see :mod:`repro.resolver.cache`'s
scoped overlay).

The option rides in the EDNS0 OPT record's ``options`` blob
(:class:`repro.dns.message.Edns`), which this codebase treats as opaque
bytes at the message layer — this module is the layer that gives those
bytes meaning.  Wire format (RFC 7871 §6)::

    +0: OPTION-CODE    (2 octets, 8)
    +2: OPTION-LENGTH  (2 octets)
    +4: FAMILY         (2 octets, 1 = IPv4, 2 = IPv6)
    +6: SOURCE PREFIX-LENGTH (1 octet)
    +7: SCOPE PREFIX-LENGTH  (1 octet)
    +8: ADDRESS        (ceil(source-prefix / 8) octets, trailing bits zero)

Trailing address bits beyond the source prefix MUST be zero; both the
constructor and the parser enforce this, so a :class:`ClientSubnet` is
always in canonical form and safe to use as a dict key.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, replace
from typing import Optional

from repro.dns.wire import WireError

__all__ = [
    "OPTION_CLIENT_SUBNET",
    "FAMILY_IPV4",
    "FAMILY_IPV6",
    "ClientSubnet",
    "extract_client_subnet",
    "replace_client_subnet",
]

#: EDNS option code assigned to Client Subnet (RFC 7871 §6).
OPTION_CLIENT_SUBNET = 8

FAMILY_IPV4 = 1
FAMILY_IPV6 = 2

#: Address width in bits per ECS family.
FAMILY_BITS = {FAMILY_IPV4: 32, FAMILY_IPV6: 128}


@dataclass(frozen=True)
class ClientSubnet:
    """One ECS option payload in canonical (trailing-bits-zero) form.

    ``address`` holds exactly ``ceil(source_prefix / 8)`` octets.  In a
    query ``scope_prefix`` is 0; in a response it is the authoritative
    server's declaration of answer scope.
    """

    family: int
    source_prefix: int
    address: bytes
    scope_prefix: int = 0

    def __post_init__(self) -> None:
        bits = FAMILY_BITS.get(self.family)
        if bits is None:
            raise WireError(f"unsupported ECS family {self.family}")
        if not 0 <= self.source_prefix <= bits:
            raise WireError(
                f"ECS source prefix {self.source_prefix} outside 0..{bits}"
            )
        if not 0 <= self.scope_prefix <= bits:
            raise WireError(
                f"ECS scope prefix {self.scope_prefix} outside 0..{bits}"
            )
        expected = (self.source_prefix + 7) // 8
        if len(self.address) != expected:
            raise WireError(
                f"ECS address is {len(self.address)} octets, "
                f"prefix /{self.source_prefix} needs {expected}"
            )
        if self.address and self.source_prefix % 8:
            mask = 0xFF00 >> (self.source_prefix % 8) & 0xFF
            if self.address[-1] & ~mask & 0xFF:
                raise WireError(
                    "ECS address has nonzero bits past the source prefix"
                )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_ip(cls, ip: str, prefix: int, scope: int = 0) -> "ClientSubnet":
        """Build from a textual IPv4/IPv6 address, truncating to ``prefix``.

        Host bits beyond ``prefix`` are zeroed (RFC 7871 §6 canonical
        form), so ``from_ip("198.18.3.57", 24)`` describes 198.18.3.0/24.
        """
        parsed = ipaddress.ip_address(ip)
        family = FAMILY_IPV4 if parsed.version == 4 else FAMILY_IPV6
        bits = FAMILY_BITS[family]
        if not 0 <= prefix <= bits:
            raise WireError(f"ECS source prefix {prefix} outside 0..{bits}")
        value = int(parsed)
        if prefix < bits:
            value &= ~((1 << (bits - prefix)) - 1) & ((1 << bits) - 1)
        octets = value.to_bytes(bits // 8, "big")[: (prefix + 7) // 8]
        return cls(
            family=family, source_prefix=prefix, address=octets, scope_prefix=scope
        )

    def truncate(self, prefix: int) -> "ClientSubnet":
        """A copy narrowed to ``min(prefix, source_prefix)`` source bits."""
        prefix = min(prefix, self.source_prefix)
        if prefix == self.source_prefix:
            return self
        bits = FAMILY_BITS[self.family]
        value = self.network_bits() & ~((1 << (bits - prefix)) - 1)
        octets = value.to_bytes(bits // 8, "big")[: (prefix + 7) // 8]
        return replace(self, source_prefix=prefix, address=octets)

    def with_scope(self, scope: int) -> "ClientSubnet":
        return replace(self, scope_prefix=scope)

    # -- matching -------------------------------------------------------------
    def network_bits(self) -> int:
        """The address as an integer left-aligned in the family width."""
        bits = FAMILY_BITS[self.family]
        return int.from_bytes(self.address, "big") << (bits - len(self.address) * 8)

    def covers(self, other: "ClientSubnet", scope: int) -> bool:
        """True when ``other``'s first ``scope`` bits equal ours.

        This is the scoped-cache match: an answer scoped at ``scope``
        serves any client subnet agreeing on those leading bits, provided
        the client's source prefix is at least that specific.
        """
        if other.family != self.family or other.source_prefix < scope:
            return False
        if scope == 0:
            return True
        bits = FAMILY_BITS[self.family]
        return (self.network_bits() ^ other.network_bits()) >> (bits - scope) == 0

    def address_text(self) -> str:
        """Presentation form, e.g. ``198.18.3.0/24``."""
        bits = FAMILY_BITS[self.family]
        padded = self.address + b"\x00" * (bits // 8 - len(self.address))
        ip = ipaddress.ip_address(padded)
        return f"{ip}/{self.source_prefix}"

    # -- wire -----------------------------------------------------------------
    def to_option_data(self) -> bytes:
        """The option payload (everything after code/length)."""
        return (
            struct.pack(
                ">HBB", self.family, self.source_prefix, self.scope_prefix
            )
            + self.address
        )

    def to_wire(self) -> bytes:
        """The full TLV, ready to append to an OPT ``options`` blob."""
        data = self.to_option_data()
        return struct.pack(">HH", OPTION_CLIENT_SUBNET, len(data)) + data

    @classmethod
    def parse_option_data(cls, data: bytes) -> "ClientSubnet":
        if len(data) < 4:
            raise WireError(f"ECS option body is {len(data)} octets, need >= 4")
        family, source, scope = struct.unpack(">HBB", data[:4])
        return cls(
            family=family,
            source_prefix=source,
            scope_prefix=scope,
            address=data[4:],
        )


def extract_client_subnet(options: bytes) -> Optional[ClientSubnet]:
    """The first ECS option in an OPT ``options`` blob, or ``None``.

    Unknown options are skipped (they belong to other extensions);
    truncated TLVs and malformed ECS payloads raise :class:`WireError` —
    a frontend parsing attacker-controlled bytes must never crash another
    way.
    """
    offset = 0
    length = len(options)
    while offset < length:
        if length - offset < 4:
            raise WireError("truncated EDNS option header")
        code, size = struct.unpack_from(">HH", options, offset)
        offset += 4
        if length - offset < size:
            raise WireError(f"EDNS option {code} overruns the options blob")
        if code == OPTION_CLIENT_SUBNET:
            return ClientSubnet.parse_option_data(options[offset : offset + size])
        offset += size
    return None


def replace_client_subnet(
    options: bytes, subnet: Optional[ClientSubnet]
) -> bytes:
    """``options`` with any ECS TLVs removed and ``subnet`` appended.

    Other options are preserved in order.  Passing ``None`` strips ECS.
    """
    kept = bytearray()
    offset = 0
    length = len(options)
    while offset < length:
        if length - offset < 4:
            raise WireError("truncated EDNS option header")
        code, size = struct.unpack_from(">HH", options, offset)
        if length - offset - 4 < size:
            raise WireError(f"EDNS option {code} overruns the options blob")
        if code != OPTION_CLIENT_SUBNET:
            kept += options[offset : offset + 4 + size]
        offset += 4 + size
    if subnet is not None:
        kept += subnet.to_wire()
    return bytes(kept)
