"""DNSSEC-lite: signature framing without cryptography.

The paper uses DNSSEC as an argument, not an experiment: "DNSSEC [...]
confirms that authoritative TTL values must be enclosed in and verified by
the signature record, which must come from the child zone" (§2), making
validating resolvers necessarily child-centric for TTLs.

This module provides exactly that mechanic: :func:`sign_zone` attaches an
RRSIG to every authoritative RRset, embedding the RRset's TTL as
``original_ttl`` (RFC 4034 §3.1.4); a validating resolver then clamps any
received TTL to the signed original (RFC 4035 §5.3.3 — a cache must not
honour a TTL above the signed value).  Signature bytes are opaque: we
model the TTL enclosure, not the cryptography (see DESIGN.md §7).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.dns.name import Name
from repro.dns.rdtypes import DNSKEY, RRSIG, RdataType
from repro.dns.record import ResourceRecord, RRset
from repro.dns.zone import Zone

#: Fixed validity window for simulated signatures (content is unchecked).
_INCEPTION = 0
_EXPIRATION = 2**31 - 1


def make_rrsig(rrset: RRset, signer: Name, key_tag: int = 12345) -> RRSIG:
    """An RRSIG covering ``rrset``, enclosing its TTL as original_ttl."""
    return RRSIG(
        type_covered=rrset.rdtype,
        algorithm=13,
        labels=len(rrset.name),
        original_ttl=rrset.ttl,
        expiration=_EXPIRATION,
        inception=_INCEPTION,
        key_tag=key_tag,
        signer=signer,
        signature=bytes((key_tag + int(rrset.rdtype)) % 256 for _ in range(8)),
    )


def sign_zone(zone: Zone, key_tag: int = 12345) -> int:
    """Sign every authoritative RRset in ``zone``; returns how many.

    Delegation NS sets (and their glue) are *not* signed — per RFC 4035
    they are non-authoritative in the parent, which is precisely why the
    child's (signed) data must outrank them.  A DNSKEY is added at the
    apex if absent.
    """
    if zone.get(zone.origin, RdataType.DNSKEY) is None:
        zone.add(
            zone.origin,
            RdataType.DNSKEY,
            DNSKEY(257, 3, 13, key_tag.to_bytes(2, "big") * 4),
            ttl=zone.default_ttl,
        )
    cuts = {rrset.name for rrset in zone.delegations()}
    signed = 0
    signatures: list[tuple[Name, RRSIG, int]] = []
    for rrset in list(zone.rrsets()):
        if rrset.rdtype == RdataType.RRSIG:
            continue
        if rrset.name in cuts and rrset.rdtype == RdataType.NS:
            continue  # delegation: parent-side, unsigned
        is_glue = any(rrset.name.is_proper_subdomain_of(cut) for cut in cuts)
        if is_glue:
            continue
        signatures.append((rrset.name, make_rrsig(rrset, zone.origin, key_tag), rrset.ttl))
        signed += 1
    for name, rrsig, ttl in signatures:
        zone.add(name, RdataType.RRSIG, rrsig, ttl=ttl)
    return signed


def covering_rrsig(
    records: Iterable[ResourceRecord], rrset: RRset
) -> Optional[RRSIG]:
    """The RRSIG among ``records`` covering ``rrset``, if any."""
    for record in records:
        if record.rdtype != RdataType.RRSIG or record.name != rrset.name:
            continue
        rdata = record.rdata
        assert isinstance(rdata, RRSIG)
        if rdata.type_covered == rrset.rdtype:
            return rdata
    return None


def clamp_to_signed_ttl(rrset: RRset, rrsig: RRSIG) -> RRset:
    """RFC 4035 §5.3.3: never cache above the signed original TTL."""
    if rrset.ttl <= rrsig.original_ttl:
        return rrset
    return rrset.with_ttl(rrsig.original_ttl)
