"""TTL validation and formatting.

RFC 2181 §8 defines the TTL as an unsigned 31-bit value; values with the top
bit set must be treated as zero.  In practice TTLs in the wild range from
0 seconds (which defeats caching — paper §5.1.2) to two days (the root zone's
delegation TTL, 172800 s).
"""

from __future__ import annotations

import re

#: Largest valid TTL: 2**31 - 1 seconds (RFC 2181 §8).
TTL_MAX = 2**31 - 1

#: Common human-chosen TTL values (paper §5.1: "times reflect human-chosen
#: values — 10 minutes and 1, 24, or 48 hours").
MINUTE = 60
HOUR = 3600
DAY = 86400

_UNIT_SECONDS = {"s": 1, "m": MINUTE, "h": HOUR, "d": DAY, "w": 7 * DAY}

_DURATION_RE = re.compile(r"(\d+)([smhdw])", re.IGNORECASE)


class TTLError(ValueError):
    """Raised for TTL values outside the RFC 2181 range."""


def validate_ttl(ttl: int) -> int:
    """Return ``ttl`` unchanged if it is a valid RFC 2181 TTL, else raise."""
    if not isinstance(ttl, int) or isinstance(ttl, bool):
        raise TTLError(f"TTL must be an int, got {type(ttl).__name__}")
    if ttl < 0 or ttl > TTL_MAX:
        raise TTLError(f"TTL {ttl} outside [0, {TTL_MAX}]")
    return ttl


def clamp_ttl(ttl: int, minimum: int = 0, maximum: int = TTL_MAX) -> int:
    """Clamp ``ttl`` into ``[minimum, maximum]``.

    This is the primitive behind resolver TTL *capping* (paper §3.3 observes
    Google Public DNS capping TTLs at 21599 s) and minimum-TTL floors
    ("many recursive resolvers have minimum caching times of tens of
    seconds", §6.1).
    """
    validate_ttl(maximum)
    if minimum < 0 or minimum > maximum:
        raise TTLError(f"invalid clamp range [{minimum}, {maximum}]")
    return max(minimum, min(validate_ttl(ttl), maximum))


def parse_ttl(text: str | int) -> int:
    """Parse a TTL from seconds or a BIND-style duration string.

    >>> parse_ttl(300)
    300
    >>> parse_ttl("2d")
    172800
    >>> parse_ttl("1h30m")
    5400
    """
    if isinstance(text, int):
        return validate_ttl(text)
    stripped = text.strip()
    if stripped.isdigit():
        return validate_ttl(int(stripped))
    total = 0
    consumed = 0
    for match in _DURATION_RE.finditer(stripped):
        if match.start() != consumed:
            raise TTLError(f"unparseable TTL: {text!r}")
        total += int(match.group(1)) * _UNIT_SECONDS[match.group(2).lower()]
        consumed = match.end()
    if consumed != len(stripped) or consumed == 0:
        raise TTLError(f"unparseable TTL: {text!r}")
    return validate_ttl(total)


def format_ttl(ttl: int) -> str:
    """Human-friendly rendering used by the harness tables.

    >>> format_ttl(172800)
    '2d'
    >>> format_ttl(5400)
    '1h30m'
    >>> format_ttl(0)
    '0s'
    """
    validate_ttl(ttl)
    if ttl == 0:
        return "0s"
    parts: list[str] = []
    remaining = ttl
    for unit, seconds in (("w", 7 * DAY), ("d", DAY), ("h", HOUR), ("m", MINUTE)):
        count, remaining = divmod(remaining, seconds)
        if count:
            parts.append(f"{count}{unit}")
    if remaining:
        parts.append(f"{remaining}s")
    return "".join(parts)
