"""DNS messages.

Implements the RFC 1035 §4.1 message: a 12-octet header (ID, flags, section
counts), a question section, and answer / authority / additional record
sections.  The distinction between the three record sections is central to
the paper (§3.1): a record's *section* determines how much a resolver
trusts it, and parent-vs-child centricity is exactly the question of whether
glue in a referral's additional section outranks an authoritative answer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.dns.name import Name
from repro.dns.rdtypes import RdataClass, RdataType
from repro.dns.record import ResourceRecord, RRset, group_rrsets
from repro.dns.wire import WireError, WireReader, WireWriter


class Opcode(enum.IntEnum):
    QUERY = 0
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5
    #: Pub/sub session kinds (see :mod:`repro.push`): RFC 8490 DNS
    #: Stateful Operations would carry these as DSO TLVs on one opcode;
    #: the sim flattens them into dedicated opcodes in the reserved
    #: range so framed session traffic stays a plain :class:`Message`.
    #: ``NOTIFY`` (RFC 1996) is reused as the server->subscriber push.
    SUBSCRIBE = 7
    UNSUBSCRIBE = 8
    KEEPALIVE = 9


class Rcode(enum.IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


class Section(enum.Enum):
    """The three record-bearing sections of a response (RFC 1035 §4.1)."""

    ANSWER = "answer"
    AUTHORITY = "authority"
    ADDITIONAL = "additional"


#: Messages without EDNS are limited to the classic RFC 1035 payload.
CLASSIC_UDP_PAYLOAD = 512

#: The payload size modern resolvers advertise (DNS flag day 2020).
DEFAULT_EDNS_PAYLOAD = 1232


@dataclass(frozen=True)
class Edns:
    """The EDNS0 parameters carried by an OPT pseudo-record (RFC 6891).

    An OPT record abuses the RR fields: CLASS is the sender's UDP payload
    size, the TTL packs extended-rcode/version/flags, and the rdata holds
    opaque options.  It is therefore parsed into this sidecar rather than
    into the additional section.
    """

    udp_payload: int = DEFAULT_EDNS_PAYLOAD
    ext_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False
    options: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.udp_payload <= 0xFFFF:
            raise ValueError(f"EDNS payload {self.udp_payload} outside u16")
        if self.version != 0:
            raise ValueError(f"unsupported EDNS version {self.version}")

    @property
    def effective_payload(self) -> int:
        """The advertised size, floored at 512 as RFC 6891 §6.2.5 requires."""
        return max(CLASSIC_UDP_PAYLOAD, self.udp_payload)


@dataclass(frozen=True)
class Flags:
    """Header flag bits.

    ``aa`` (Authoritative Answer) is what marks child-zone data as
    authoritative; the paper's Table 1 uses ★ for records carried in
    AA-flagged answers.
    """

    qr: bool = False  # response (vs query)
    aa: bool = False  # authoritative answer
    tc: bool = False  # truncated
    rd: bool = True  # recursion desired
    ra: bool = False  # recursion available

    def to_wire_bits(self, opcode: Opcode, rcode: Rcode) -> int:
        bits = 0
        if self.qr:
            bits |= 0x8000
        bits |= (int(opcode) & 0xF) << 11
        if self.aa:
            bits |= 0x0400
        if self.tc:
            bits |= 0x0200
        if self.rd:
            bits |= 0x0100
        if self.ra:
            bits |= 0x0080
        bits |= int(rcode) & 0xF
        return bits

    @classmethod
    def from_wire_bits(cls, bits: int) -> tuple["Flags", Opcode, Rcode]:
        flags = cls(
            qr=bool(bits & 0x8000),
            aa=bool(bits & 0x0400),
            tc=bool(bits & 0x0200),
            rd=bool(bits & 0x0100),
            ra=bool(bits & 0x0080),
        )
        return flags, Opcode((bits >> 11) & 0xF), Rcode(bits & 0xF)


@dataclass(frozen=True)
class Question:
    """A question-section entry."""

    qname: Name
    qtype: RdataType
    qclass: RdataClass = RdataClass.IN

    def __post_init__(self) -> None:
        if not isinstance(self.qname, Name):
            object.__setattr__(self, "qname", Name(self.qname))

    def to_text(self) -> str:
        return f"{self.qname} {self.qclass.name} {self.qtype.name}"

    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.qname)
        writer.write_u16(int(self.qtype))
        writer.write_u16(int(self.qclass))

    @classmethod
    def from_wire(cls, reader: WireReader) -> "Question":
        qname = reader.read_name()
        qtype = RdataType(reader.read_u16())
        qclass = RdataClass(reader.read_u16())
        return cls(qname, qtype, qclass)


@dataclass
class Message:
    """A DNS query or response."""

    id: int = 0
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    flags: Flags = field(default_factory=Flags)
    question: Optional[Question] = None
    answer: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)
    #: EDNS0 sidecar; ``None`` means the message carries no OPT record.
    edns: Optional[Edns] = None
    #: Per-section RRset grouping memo, validated by record count (records
    #: are only ever appended via :meth:`add`).
    _rrset_memo: Optional[dict] = field(default=None, init=False, repr=False, compare=False)

    # -- constructors -----------------------------------------------------------
    @classmethod
    def make_query(
        cls,
        qname: Name | str,
        qtype: RdataType,
        qclass: RdataClass = RdataClass.IN,
        id: int = 0,
        recursion_desired: bool = True,
    ) -> "Message":
        return cls(
            id=id,
            flags=Flags(qr=False, rd=recursion_desired),
            question=Question(Name(qname), qtype, qclass),
        )

    def make_response(
        self,
        rcode: Rcode = Rcode.NOERROR,
        authoritative: bool = False,
        recursion_available: bool = False,
    ) -> "Message":
        """A response skeleton echoing this query's ID and question."""
        return Message(
            id=self.id,
            rcode=rcode,
            flags=Flags(
                qr=True,
                aa=authoritative,
                rd=self.flags.rd,
                ra=recursion_available,
            ),
            question=self.question,
        )

    # -- EDNS -----------------------------------------------------------------------
    def use_edns(
        self,
        udp_payload: int = DEFAULT_EDNS_PAYLOAD,
        dnssec_ok: bool = False,
        options: bytes = b"",
    ) -> "Message":
        """Attach an OPT record advertising ``udp_payload``; returns self.

        ``options`` is the raw EDNS option blob (e.g. an ECS TLV built by
        :mod:`repro.dns.ecs`); the message layer carries it opaquely.
        """
        self.edns = Edns(udp_payload=udp_payload, dnssec_ok=dnssec_ok, options=options)
        return self

    @property
    def udp_payload_limit(self) -> int:
        """The largest UDP response this message's sender can accept."""
        if self.edns is None:
            return CLASSIC_UDP_PAYLOAD
        return self.edns.effective_payload

    # -- section access ------------------------------------------------------------
    def section(self, section: Section) -> list[ResourceRecord]:
        if section is Section.ANSWER:
            return self.answer
        if section is Section.AUTHORITY:
            return self.authority
        return self.additional

    def add(self, section: Section, *records: ResourceRecord) -> None:
        self.section(section).extend(records)

    def all_records(self) -> Iterator[tuple[Section, ResourceRecord]]:
        for section in Section:
            for record in self.section(section):
                yield section, record

    def rrsets(self, section: Section) -> list[RRset]:
        records = self.section(section)
        memo = self._rrset_memo
        if memo is None:
            memo = {}
            self._rrset_memo = memo
        hit = memo.get(section)
        if hit is not None and hit[0] == len(records):
            return hit[1]
        groups = group_rrsets(records)
        memo[section] = (len(records), groups)
        return groups

    def find_rrset(
        self,
        section: Section,
        name: Name,
        rdtype: RdataType,
        rdclass: RdataClass = RdataClass.IN,
    ) -> Optional[RRset]:
        """The RRset for (name, type, class) in ``section``, or ``None``."""
        matching = [
            record
            for record in self.section(section)
            if record.name == name and record.rdtype == rdtype and record.rdclass == rdclass
        ]
        if not matching:
            return None
        return group_rrsets(matching)[0]

    # -- classification -----------------------------------------------------------
    @property
    def is_response(self) -> bool:
        return self.flags.qr

    def is_referral(self) -> bool:
        """A delegation response: no answer, NS records in authority, not AA.

        This is the shape a parent zone's server returns for names below a
        zone cut; its additional section may carry glue.
        """
        if self.rcode != Rcode.NOERROR or self.answer:
            return False
        return any(record.rdtype == RdataType.NS for record in self.authority)

    def answer_rrset(self) -> Optional[RRset]:
        """The answer RRset matching the question, if any (CNAMEs aside)."""
        if self.question is None:
            return None
        return self.find_rrset(
            Section.ANSWER, self.question.qname, self.question.qtype, self.question.qclass
        )

    def aged(self, seconds: int) -> "Message":
        """A copy with every record's TTL aged by ``seconds``."""
        copy = Message(
            id=self.id,
            opcode=self.opcode,
            rcode=self.rcode,
            flags=self.flags,
            question=self.question,
        )
        for section in Section:
            copy.section(section)[:] = [
                record.aged(seconds) for record in self.section(section)
            ]
        return copy

    def to_text(self) -> str:
        lines = [
            f";; id {self.id} opcode {self.opcode.name} rcode {self.rcode.name} "
            f"flags{' qr' if self.flags.qr else ''}{' aa' if self.flags.aa else ''}"
            f"{' rd' if self.flags.rd else ''}{' ra' if self.flags.ra else ''}"
        ]
        if self.question is not None:
            lines.append(";; QUESTION")
            lines.append(self.question.to_text())
        for section in Section:
            records = self.section(section)
            if records:
                lines.append(f";; {section.name}")
                lines.extend(record.to_text() for record in records)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()

    # -- wire -----------------------------------------------------------------------
    def to_wire(self) -> bytes:
        writer = WireWriter()
        writer.write_u16(self.id)
        writer.write_u16(self.flags.to_wire_bits(self.opcode, self.rcode))
        writer.write_u16(1 if self.question is not None else 0)
        writer.write_u16(len(self.answer))
        writer.write_u16(len(self.authority))
        writer.write_u16(len(self.additional) + (1 if self.edns is not None else 0))
        if self.question is not None:
            self.question.to_wire(writer)
        for section in Section:
            for record in self.section(section):
                record.to_wire(writer)
        if self.edns is not None:
            self._write_opt(writer, self.edns)
        return writer.getvalue()

    @staticmethod
    def _write_opt(writer: WireWriter, edns: Edns) -> None:
        """Emit the OPT pseudo-record last in the additional section."""
        writer.write_u8(0)  # owner: the root name, never compressed
        writer.write_u16(int(RdataType.OPT))
        writer.write_u16(edns.udp_payload)
        ttl = (edns.ext_rcode & 0xFF) << 24 | (edns.version & 0xFF) << 16
        if edns.dnssec_ok:
            ttl |= 0x8000
        writer.write_u32(ttl)
        writer.write_u16(len(edns.options))
        writer.write_bytes(edns.options)

    @staticmethod
    def _read_opt(name: Name, reader: WireReader) -> Edns:
        if not name.is_root:
            raise WireError(f"OPT record owned by {name}, not the root")
        udp_payload = reader.read_u16()
        ttl = reader.read_u32()
        version = (ttl >> 16) & 0xFF
        if version != 0:
            raise WireError(f"unsupported EDNS version {version}")
        rdlength = reader.read_u16()
        options = reader.read_bytes(rdlength)
        return Edns(
            udp_payload=udp_payload,
            ext_rcode=(ttl >> 24) & 0xFF,
            version=version,
            dnssec_ok=bool(ttl & 0x8000),
            options=options,
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "Message":
        reader = WireReader(data)
        message_id = reader.read_u16()
        flags, opcode, rcode = Flags.from_wire_bits(reader.read_u16())
        qdcount = reader.read_u16()
        ancount = reader.read_u16()
        nscount = reader.read_u16()
        arcount = reader.read_u16()
        if qdcount > 1:
            raise WireError(f"unsupported QDCOUNT {qdcount}")
        question = Question.from_wire(reader) if qdcount else None
        message = cls(
            id=message_id, opcode=opcode, rcode=rcode, flags=flags, question=question
        )
        for section, count in (
            (Section.ANSWER, ancount),
            (Section.AUTHORITY, nscount),
            (Section.ADDITIONAL, arcount),
        ):
            for _ in range(count):
                name = reader.read_name()
                rdtype = RdataType(reader.read_u16())
                if rdtype == RdataType.OPT:
                    if section is not Section.ADDITIONAL:
                        raise WireError(f"OPT record in the {section.name} section")
                    if message.edns is not None:
                        raise WireError("more than one OPT record")
                    message.edns = cls._read_opt(name, reader)
                    continue
                message.section(section).append(
                    ResourceRecord.from_wire_body(name, rdtype, reader)
                )
        if reader.remaining:
            raise WireError(f"{reader.remaining} trailing octets after message")
        return message


def records_as_text(records: Iterable[ResourceRecord]) -> str:
    """Multi-line presentation form for a record list."""
    return "\n".join(record.to_text() for record in records)
