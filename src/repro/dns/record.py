"""Resource records and RRsets.

A :class:`ResourceRecord` is one (name, type, class, TTL, rdata) tuple; an
:class:`RRset` groups the records sharing (name, type, class).  RFC 2181
§5.2 requires all members of an RRset to carry the same TTL; :class:`RRset`
enforces that on construction and exposes TTL arithmetic (aging records as
they sit in a cache) used throughout the resolver.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.dns.name import Name
from repro.dns.rdtypes import Rdata, RdataClass, RdataType, read_rdata
from repro.dns.ttl import validate_ttl
from repro.dns.wire import WireReader, WireWriter


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: Name
    rdtype: RdataType
    ttl: int
    rdata: Rdata
    rdclass: RdataClass = RdataClass.IN

    def __post_init__(self) -> None:
        if not isinstance(self.name, Name):
            object.__setattr__(self, "name", Name(self.name))
        validate_ttl(self.ttl)
        if self.rdata.rdtype != self.rdtype:
            raise ValueError(
                f"rdata of type {self.rdata.rdtype.name} in a {self.rdtype.name} record"
            )

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy of this record carrying ``ttl``."""
        return replace(self, ttl=ttl)

    def aged(self, seconds: int) -> "ResourceRecord":
        """A copy aged by ``seconds``, flooring the TTL at zero.

        This is what a cache does when handing out a record it stored
        ``seconds`` ago.
        """
        if seconds < 0:
            raise ValueError(f"cannot age by negative time {seconds}")
        return self.with_ttl(max(0, self.ttl - seconds))

    def key(self) -> tuple[Name, RdataType, RdataClass]:
        return (self.name, self.rdtype, self.rdclass)

    def to_text(self) -> str:
        return (
            f"{self.name} {self.ttl} {self.rdclass.name} "
            f"{self.rdtype.name} {self.rdata.to_text()}"
        )

    def __str__(self) -> str:
        return self.to_text()

    # -- wire -----------------------------------------------------------------
    def to_wire(self, writer: WireWriter) -> None:
        writer.write_name(self.name)
        writer.write_u16(int(self.rdtype))
        writer.write_u16(int(self.rdclass))
        writer.write_u32(self.ttl)
        rdlength_at = len(writer)
        writer.write_u16(0)  # RDLENGTH placeholder
        rdata_start = len(writer)
        self.rdata.to_wire(writer)
        writer.patch_u16(rdlength_at, len(writer) - rdata_start)

    @classmethod
    def from_wire(cls, reader: WireReader) -> "ResourceRecord":
        name = reader.read_name()
        rdtype = RdataType(reader.read_u16())
        return cls.from_wire_body(name, rdtype, reader)

    @classmethod
    def from_wire_body(
        cls, name: Name, rdtype: RdataType, reader: WireReader
    ) -> "ResourceRecord":
        """Finish decoding a record whose name and type are already read.

        The message codec peeks at the type to divert OPT pseudo-records
        (EDNS, RFC 6891) before they reach the record constructor — an
        OPT's CLASS field is a UDP payload size, not a class.
        """
        rdclass = RdataClass(reader.read_u16())
        ttl = reader.read_u32()
        rdlength = reader.read_u16()
        rdata = read_rdata(rdtype, reader, rdlength)
        return cls(name=name, rdtype=rdtype, ttl=ttl, rdata=rdata, rdclass=rdclass)


@dataclass
class RRset:
    """All records sharing a (name, type, class), with one shared TTL.

    >>> from repro.dns.rdtypes import A
    >>> rrset = RRset(Name("example.com"), RdataType.A, 300, [A("192.0.2.1")])
    >>> rrset.ttl
    300
    """

    name: Name
    rdtype: RdataType
    ttl: int
    rdatas: tuple[Rdata, ...] = field(default_factory=tuple)
    rdclass: RdataClass = RdataClass.IN

    def __post_init__(self) -> None:
        if not isinstance(self.name, Name):
            self.name = Name(self.name)
        validate_ttl(self.ttl)
        self.rdatas = tuple(self.rdatas)
        for rdata in self.rdatas:
            if rdata.rdtype != self.rdtype:
                raise ValueError(
                    f"rdata of type {rdata.rdtype.name} in a {self.rdtype.name} RRset"
                )

    @classmethod
    def from_records(cls, records: Iterable[ResourceRecord]) -> "RRset":
        """Build an RRset from records that must share (name, type, class).

        Per RFC 2181 §5.2, differing TTLs within a set are an error; callers
        that tolerate them should normalize first.
        """
        materialized = list(records)
        if not materialized:
            raise ValueError("cannot build an RRset from no records")
        first = materialized[0]
        for record in materialized[1:]:
            if record.key() != first.key():
                raise ValueError(f"mixed keys in RRset: {record.key()} vs {first.key()}")
            if record.ttl != first.ttl:
                raise ValueError(
                    f"RFC 2181 violation: differing TTLs {record.ttl} vs {first.ttl} "
                    f"for {first.name}/{first.rdtype.name}"
                )
        return cls(
            name=first.name,
            rdtype=first.rdtype,
            ttl=first.ttl,
            rdatas=tuple(record.rdata for record in materialized),
            rdclass=first.rdclass,
        )

    def records(self) -> Iterator[ResourceRecord]:
        """Explode back into individual records."""
        for rdata in self.rdatas:
            yield ResourceRecord(
                name=self.name,
                rdtype=self.rdtype,
                ttl=self.ttl,
                rdata=rdata,
                rdclass=self.rdclass,
            )

    def __len__(self) -> int:
        return len(self.rdatas)

    def __iter__(self) -> Iterator[Rdata]:
        return iter(self.rdatas)

    def key(self) -> tuple[Name, RdataType, RdataClass]:
        return (self.name, self.rdtype, self.rdclass)

    @classmethod
    def _build(
        cls,
        name: Name,
        rdtype: RdataType,
        ttl: int,
        rdatas: tuple[Rdata, ...],
        rdclass: RdataClass,
    ) -> "RRset":
        """Trusted constructor: fields come from an already-validated RRset
        (or record group), so ``__post_init__``'s re-checks are skipped."""
        rrset = object.__new__(cls)
        rrset.name = name
        rrset.rdtype = rdtype
        rrset.ttl = ttl
        rrset.rdatas = rdatas
        rrset.rdclass = rdclass
        return rrset

    def with_ttl(self, ttl: int) -> "RRset":
        validate_ttl(ttl)
        return RRset._build(self.name, self.rdtype, ttl, self.rdatas, self.rdclass)

    def aged(self, seconds: int) -> "RRset":
        if seconds < 0:
            raise ValueError(f"cannot age by negative time {seconds}")
        return self.with_ttl(max(0, self.ttl - seconds))

    def to_text(self) -> str:
        return "\n".join(record.to_text() for record in self.records())


def group_rrsets(records: Iterable[ResourceRecord]) -> list[RRset]:
    """Group records into RRsets, preserving first-seen order.

    Unlike :meth:`RRset.from_records` this tolerates mixed TTLs by taking
    the *minimum* (the conservative reading of RFC 2181 §5.2 that real
    resolvers apply).
    """
    ordered: dict[tuple[Name, RdataType, RdataClass], list[ResourceRecord]] = {}
    for record in records:
        ordered.setdefault(record.key(), []).append(record)
    rrsets: list[RRset] = []
    for key, members in ordered.items():
        if len(members) == 1:
            record = members[0]
            rrsets.append(
                RRset._build(key[0], key[1], record.ttl, (record.rdata,), key[2])
            )
            continue
        ttl = min(record.ttl for record in members)
        rrsets.append(
            RRset._build(
                key[0],
                key[1],
                ttl,
                tuple(record.rdata for record in members),
                key[2],
            )
        )
    return rrsets
