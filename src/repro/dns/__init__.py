"""DNS protocol substrate.

A self-contained implementation of the parts of the DNS that the paper's
experiments exercise: domain names with bailiwick semantics, resource
records and RRsets, query/response messages with the four RFC 1035 sections
and header flags, a wire-format codec with name compression, and zones with
delegations and glue.
"""

from repro.dns.ecs import (
    OPTION_CLIENT_SUBNET,
    ClientSubnet,
    extract_client_subnet,
    replace_client_subnet,
)
from repro.dns.name import Name, NameError_, root
from repro.dns.rdtypes import (
    A,
    AAAA,
    CNAME,
    DNSKEY,
    MX,
    NS,
    OPT,
    RRSIG,
    SOA,
    TXT,
    OpaqueRdata,
    Rdata,
    RdataClass,
    RdataType,
)
from repro.dns.record import ResourceRecord, RRset
from repro.dns.message import (
    CLASSIC_UDP_PAYLOAD,
    DEFAULT_EDNS_PAYLOAD,
    Edns,
    Flags,
    Message,
    Opcode,
    Question,
    Rcode,
    Section,
)
from repro.dns.zone import LookupResult, LookupStatus, Zone, ZoneError
from repro.dns.ttl import TTL_MAX, clamp_ttl, format_ttl, parse_ttl, validate_ttl

__all__ = [
    "A",
    "AAAA",
    "CLASSIC_UDP_PAYLOAD",
    "CNAME",
    "ClientSubnet",
    "DEFAULT_EDNS_PAYLOAD",
    "DNSKEY",
    "Edns",
    "Flags",
    "LookupResult",
    "LookupStatus",
    "MX",
    "Message",
    "NS",
    "Name",
    "NameError_",
    "OPT",
    "OPTION_CLIENT_SUBNET",
    "OpaqueRdata",
    "Opcode",
    "Question",
    "RRSIG",
    "RRset",
    "Rcode",
    "Rdata",
    "RdataClass",
    "RdataType",
    "ResourceRecord",
    "SOA",
    "Section",
    "TTL_MAX",
    "TXT",
    "Zone",
    "ZoneError",
    "clamp_ttl",
    "extract_client_subnet",
    "format_ttl",
    "parse_ttl",
    "replace_client_subnet",
    "root",
    "validate_ttl",
]
