"""Domain names.

Names are immutable sequences of labels stored in lowercase (the DNS is
case-insensitive for matching, RFC 1035 §2.3.3).  The empty label sequence is
the root.  A :class:`Name` is always absolute: ``Name("www.example.com")`` and
``Name("www.example.com.")`` denote the same fully-qualified name.

The class implements the relationships the paper's analysis needs:

- subdomain / superdomain tests,
- *bailiwick* tests (RFC 8499: a server name is *in bailiwick* of a zone when
  it is subordinate to the zone's origin, e.g. ``ns.example.org`` is in
  bailiwick of ``example.org``),
- parent traversal and label slicing, and
- canonical DNS ordering (RFC 4034 §6.1), used for deterministic output.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


class NameError_(ValueError):
    """Raised for syntactically invalid domain names.

    Named with a trailing underscore to avoid shadowing the builtin
    ``NameError``.
    """


def _validate_label(label: str) -> str:
    if not label:
        raise NameError_("empty label (consecutive dots?)")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH}): {label!r}")
    try:
        label.encode("ascii")
    except UnicodeEncodeError as exc:
        raise NameError_(f"non-ASCII label (IDNA is out of scope): {label!r}") from exc
    return label.lower()


@total_ordering
class Name:
    """An absolute domain name.

    >>> n = Name("WWW.Example.COM.")
    >>> str(n)
    'www.example.com.'
    >>> n.is_subdomain_of(Name("example.com"))
    True
    """

    __slots__ = ("_labels", "_hash")

    _labels: tuple[str, ...]
    _hash: int

    def __init__(self, text: str | Iterable[str] | "Name" = "") -> None:
        if isinstance(text, Name):
            labels: tuple[str, ...] = text._labels
        elif isinstance(text, str):
            stripped = text.rstrip(".")
            if stripped:
                labels = tuple(_validate_label(lab) for lab in stripped.split("."))
            else:
                labels = ()
        else:
            labels = tuple(_validate_label(lab) for lab in text)
        # +1 per label for the length octet, +1 for the root's null label.
        wire_length = sum(len(lab) + 1 for lab in labels) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({wire_length} > {MAX_NAME_LENGTH} octets)")
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_hash", hash(labels))

    # -- immutability -------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Name is immutable")

    def __reduce__(self) -> tuple:
        # The default slot-state pickle path calls __setattr__ on load,
        # which the immutability guard rejects; rebuild from labels
        # instead (shard workers ship Names across process boundaries).
        return (Name, (self._labels,))

    # -- accessors -----------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """The labels, most significant last (``('www', 'example', 'com')``)."""
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def __len__(self) -> int:
        """Number of labels (the root has zero)."""
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __str__(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels) + "."

    def to_text(self) -> str:
        """The absolute presentation form, always with the trailing dot."""
        return str(self)

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    # -- equality and ordering ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Name):
            return self._labels == other._labels
        if isinstance(other, str):
            try:
                return self._labels == Name(other)._labels
            except NameError_:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        # Canonical DNS ordering (RFC 4034 §6.1): compare labels right to
        # left; absence of a label sorts before any label value.
        return self._canonical_key() < other._canonical_key()

    def _canonical_key(self) -> tuple[str, ...]:
        return tuple(reversed(self._labels))

    # -- construction helpers --------------------------------------------------
    def concatenate(self, suffix: "Name") -> "Name":
        """Return ``self`` + ``suffix``, e.g. ``ns1`` under ``example.com``."""
        return Name(self._labels + suffix._labels)

    def prepend(self, label: str) -> "Name":
        """Return a new name with ``label`` added at the left."""
        return Name((_validate_label(label),) + self._labels)

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        >>> Name("www.example.com").parent()
        Name('example.com.')
        """
        if not self._labels:
            raise NameError_("the root has no parent")
        return Name(self._labels[1:])

    def ancestors(self) -> Iterator["Name"]:
        """Yield every proper ancestor, nearest first, ending with the root.

        >>> [str(a) for a in Name("a.b.c").ancestors()]
        ['b.c.', 'c.', '.']
        """
        name = self
        while not name.is_root:
            name = name.parent()
            yield name

    def split(self, depth: int) -> tuple["Name", "Name"]:
        """Split into (prefix, suffix) where the suffix keeps ``depth`` labels.

        >>> Name("www.example.com").split(2)
        (Name('www.'), Name('example.com.'))
        """
        if depth < 0 or depth > len(self._labels):
            raise NameError_(f"cannot keep {depth} labels of {self}")
        cut = len(self._labels) - depth
        return Name(self._labels[:cut]), Name(self._labels[cut:])

    def relativize(self, origin: "Name") -> tuple[str, ...]:
        """Labels of ``self`` below ``origin`` (empty if equal).

        Raises :class:`NameError_` when ``self`` is not subordinate to
        ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        if origin.is_root:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    # -- relationships ----------------------------------------------------------
    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals ``other`` or lies beneath it.

        Every name is a subdomain of the root and of itself.
        """
        if other.is_root:
            return True
        offset = len(self._labels) - len(other._labels)
        if offset < 0:
            return False
        return self._labels[offset:] == other._labels

    def is_proper_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` lies strictly beneath ``other``."""
        return self != other and self.is_subdomain_of(other)

    def is_superdomain_of(self, other: "Name") -> bool:
        return other.is_subdomain_of(self)

    def in_bailiwick_of(self, zone_origin: "Name") -> bool:
        """RFC 8499 bailiwick test: is this name at/under ``zone_origin``?

        The paper's §4 experiments hinge on this distinction:
        ``ns1.sub.cachetest.net`` is in bailiwick of ``sub.cachetest.net``
        (glue required), while ``ns1.zurrundedu.com`` is out of bailiwick of
        ``sub.cachetest.net`` (the resolver must resolve the server name
        independently).
        """
        return self.is_subdomain_of(zone_origin)

    def common_ancestor(self, other: "Name") -> "Name":
        """The deepest name that is an ancestor-or-self of both names."""
        shared: list[str] = []
        for mine, theirs in zip(reversed(self._labels), reversed(other._labels)):
            if mine != theirs:
                break
            shared.append(mine)
        return Name(tuple(reversed(shared)))


#: The root name (``.``).
root = Name("")
