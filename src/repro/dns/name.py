"""Domain names.

Names are immutable sequences of labels stored in lowercase (the DNS is
case-insensitive for matching, RFC 1035 §2.3.3).  The empty label sequence is
the root.  A :class:`Name` is always absolute: ``Name("www.example.com")`` and
``Name("www.example.com.")`` denote the same fully-qualified name.

The class implements the relationships the paper's analysis needs:

- subdomain / superdomain tests,
- *bailiwick* tests (RFC 8499: a server name is *in bailiwick* of a zone when
  it is subordinate to the zone's origin, e.g. ``ns.example.org`` is in
  bailiwick of ``example.org``),
- parent traversal and label slicing, and
- canonical DNS ordering (RFC 4034 §6.1), used for deterministic output.

Construction is *interned*: every label tuple maps to one canonical
instance, so equal names are usually the same object (``==`` short-circuits
on identity) and the simulator's hottest call — re-parsing the same handful
of query names millions of times — collapses to a dict probe.  The intern
tables are bounded (:data:`_INTERN_MAX` entries each) and simply reset when
full; a name that outlives a reset stays valid, it just stops being the
canonical instance for its labels, which only costs the identity fast path.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255

#: Bound on each intern table.  Paper campaigns use a few hundred distinct
#: names; 4096 keeps even crawl-scale universes fully interned while capping
#: worst-case memory for adversarial inputs (wire decode of hostile blobs).
_INTERN_MAX = 4096

#: Canonical instance per label tuple.
_INTERN: dict[tuple[str, ...], "Name"] = {}

#: Parse memo: raw constructor text -> canonical instance.  Keyed by the
#: *unnormalized* text so the hot path skips rstrip/split/lower entirely.
_TEXT_INTERN: dict[str, "Name"] = {}


class NameError_(ValueError):
    """Raised for syntactically invalid domain names.

    Named with a trailing underscore to avoid shadowing the builtin
    ``NameError``.
    """


def _validate_label(label: str) -> str:
    if not label:
        raise NameError_("empty label (consecutive dots?)")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH}): {label!r}")
    try:
        label.encode("ascii")
    except UnicodeEncodeError as exc:
        raise NameError_(f"non-ASCII label (IDNA is out of scope): {label!r}") from exc
    return label.lower()


def _check_wire_length(labels: tuple[str, ...]) -> None:
    # +1 per label for the length octet, +1 for the root's null label.
    wire_length = sum(len(lab) + 1 for lab in labels) + 1
    if wire_length > MAX_NAME_LENGTH:
        raise NameError_(f"name too long ({wire_length} > {MAX_NAME_LENGTH} octets)")


def _interned_name(labels: tuple[str, ...]) -> "Name":
    """Pickle entry point: route unpickled names through the intern table.

    Shard workers ship Names across process boundaries; resolving through
    the table keeps the identity fast path intact after a merge.
    """
    return Name.from_labels(labels)


@total_ordering
class Name:
    """An absolute domain name.

    >>> n = Name("WWW.Example.COM.")
    >>> str(n)
    'www.example.com.'
    >>> n.is_subdomain_of(Name("example.com"))
    True
    """

    __slots__ = ("_labels", "_hash", "_key")

    _labels: tuple[str, ...]
    _hash: int
    _key: tuple[str, ...] | None

    def __new__(cls, text: str | Iterable[str] | "Name" = "") -> "Name":
        if type(text) is Name:
            return text
        if isinstance(text, str):
            cached = _TEXT_INTERN.get(text)
            if cached is not None:
                return cached
            stripped = text.rstrip(".")
            if stripped:
                labels = tuple(_validate_label(lab) for lab in stripped.split("."))
            else:
                labels = ()
            _check_wire_length(labels)
            name = _intern(labels)
            if len(_TEXT_INTERN) >= _INTERN_MAX:
                _TEXT_INTERN.clear()
            _TEXT_INTERN[text] = name
            return name
        if isinstance(text, Name):  # a subclass instance: canonicalize
            return _intern(text._labels)
        labels = tuple(_validate_label(lab) for lab in text)
        _check_wire_length(labels)
        return _intern(labels)

    def __init__(self, text: str | Iterable[str] | "Name" = "") -> None:
        # All construction work happens in __new__ (which may return an
        # existing interned instance that must not be re-initialized).
        pass

    @classmethod
    def from_labels(cls, labels: tuple[str, ...]) -> "Name":
        """Trusted constructor: ``labels`` are already validated and lowercase.

        Used by :meth:`parent`/:meth:`ancestors`/:meth:`split` (slices of a
        validated name) and by wire decode (which enforces the wire-format
        limits itself), skipping per-label re-validation.
        """
        cached = _INTERN.get(labels)
        if cached is not None:
            return cached
        return _intern(labels)

    # -- immutability -------------------------------------------------------
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Name is immutable")

    def __reduce__(self) -> tuple:
        # The default slot-state pickle path calls __setattr__ on load,
        # which the immutability guard rejects; rebuild through the intern
        # table instead so unpickled names are canonical instances.
        return (_interned_name, (self._labels,))

    def __copy__(self) -> "Name":
        return self

    def __deepcopy__(self, memo: dict) -> "Name":
        return self

    # -- accessors -----------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """The labels, most significant last (``('www', 'example', 'com')``)."""
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    def __len__(self) -> int:
        """Number of labels (the root has zero)."""
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __str__(self) -> str:
        if not self._labels:
            return "."
        return ".".join(self._labels) + "."

    def to_text(self) -> str:
        """The absolute presentation form, always with the trailing dot."""
        return str(self)

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"

    # -- equality and ordering ------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:  # interning makes this the common case
            return True
        if isinstance(other, Name):
            return self._labels == other._labels
        if isinstance(other, str):
            try:
                return self._labels == Name(other)._labels
            except NameError_:
                return False
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        # Canonical DNS ordering (RFC 4034 §6.1): compare labels right to
        # left; absence of a label sorts before any label value.
        return self._canonical_key() < other._canonical_key()

    def _canonical_key(self) -> tuple[str, ...]:
        key = self._key
        if key is None:
            key = tuple(reversed(self._labels))
            object.__setattr__(self, "_key", key)
        return key

    # -- construction helpers --------------------------------------------------
    def concatenate(self, suffix: "Name") -> "Name":
        """Return ``self`` + ``suffix``, e.g. ``ns1`` under ``example.com``."""
        labels = self._labels + suffix._labels
        _check_wire_length(labels)
        return Name.from_labels(labels)

    def prepend(self, label: str) -> "Name":
        """Return a new name with ``label`` added at the left."""
        labels = (_validate_label(label),) + self._labels
        _check_wire_length(labels)
        return Name.from_labels(labels)

    def parent(self) -> "Name":
        """The name with the leftmost label removed.

        >>> Name("www.example.com").parent()
        Name('example.com.')
        """
        if not self._labels:
            raise NameError_("the root has no parent")
        return Name.from_labels(self._labels[1:])

    def ancestors(self) -> Iterator["Name"]:
        """Yield every proper ancestor, nearest first, ending with the root.

        >>> [str(a) for a in Name("a.b.c").ancestors()]
        ['b.c.', 'c.', '.']
        """
        name = self
        while not name.is_root:
            name = name.parent()
            yield name

    def split(self, depth: int) -> tuple["Name", "Name"]:
        """Split into (prefix, suffix) where the suffix keeps ``depth`` labels.

        >>> Name("www.example.com").split(2)
        (Name('www.'), Name('example.com.'))
        """
        if depth < 0 or depth > len(self._labels):
            raise NameError_(f"cannot keep {depth} labels of {self}")
        cut = len(self._labels) - depth
        return Name.from_labels(self._labels[:cut]), Name.from_labels(self._labels[cut:])

    def relativize(self, origin: "Name") -> tuple[str, ...]:
        """Labels of ``self`` below ``origin`` (empty if equal).

        Raises :class:`NameError_` when ``self`` is not subordinate to
        ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        if origin.is_root:
            return self._labels
        return self._labels[: len(self._labels) - len(origin._labels)]

    # -- relationships ----------------------------------------------------------
    def is_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` equals ``other`` or lies beneath it.

        Every name is a subdomain of the root and of itself.
        """
        if other.is_root:
            return True
        offset = len(self._labels) - len(other._labels)
        if offset < 0:
            return False
        return self._labels[offset:] == other._labels

    def is_proper_subdomain_of(self, other: "Name") -> bool:
        """True when ``self`` lies strictly beneath ``other``."""
        return self != other and self.is_subdomain_of(other)

    def is_superdomain_of(self, other: "Name") -> bool:
        return other.is_subdomain_of(self)

    def in_bailiwick_of(self, zone_origin: "Name") -> bool:
        """RFC 8499 bailiwick test: is this name at/under ``zone_origin``?

        The paper's §4 experiments hinge on this distinction:
        ``ns1.sub.cachetest.net`` is in bailiwick of ``sub.cachetest.net``
        (glue required), while ``ns1.zurrundedu.com`` is out of bailiwick of
        ``sub.cachetest.net`` (the resolver must resolve the server name
        independently).
        """
        return self.is_subdomain_of(zone_origin)

    def common_ancestor(self, other: "Name") -> "Name":
        """The deepest name that is an ancestor-or-self of both names."""
        shared: list[str] = []
        for mine, theirs in zip(reversed(self._labels), reversed(other._labels)):
            if mine != theirs:
                break
            shared.append(mine)
        return Name.from_labels(tuple(reversed(shared)))


def _intern(labels: tuple[str, ...]) -> Name:
    """Create (or fetch) the canonical instance for ``labels``."""
    cached = _INTERN.get(labels)
    if cached is not None:
        return cached
    name = object.__new__(Name)
    object.__setattr__(name, "_labels", labels)
    object.__setattr__(name, "_hash", hash(labels))
    object.__setattr__(name, "_key", None)
    if len(_INTERN) >= _INTERN_MAX:
        _INTERN.clear()
    _INTERN[labels] = name
    return name


#: The root name (``.``).
root = Name("")
