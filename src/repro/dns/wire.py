"""RFC 1035 wire-format buffers with name compression.

:class:`WireWriter` and :class:`WireReader` provide the primitive
fixed-width integer and domain-name operations that the rdata, record and
message codecs build on.  Compression pointers (RFC 1035 §4.1.4) are emitted
for repeated names and are validated on read: successive pointer targets
must strictly decrease and names may not exceed 255 octets, which together
guarantee termination even on hostile input.
"""

from __future__ import annotations

import struct

from repro.dns.name import Name

#: Two high bits set in a label length octet mark a compression pointer.
_POINTER_MASK = 0xC0
#: Maximum offset representable in a 14-bit compression pointer.
_POINTER_MAX_OFFSET = 0x3FFF

MAX_MESSAGE_SIZE = 65535


class WireError(ValueError):
    """Raised for malformed wire data or buffer overruns."""


class WireWriter:
    """An append-only message buffer with name compression."""

    def __init__(self) -> None:
        self._chunks = bytearray()
        # Map from a name's label tuple to the offset of its first encoding.
        self._compression: dict[tuple[str, ...], int] = {}

    def __len__(self) -> int:
        return len(self._chunks)

    def getvalue(self) -> bytes:
        if len(self._chunks) > MAX_MESSAGE_SIZE:
            raise WireError(f"message too large ({len(self._chunks)} octets)")
        return bytes(self._chunks)

    # -- integers ------------------------------------------------------------
    def write_u8(self, value: int) -> None:
        self._chunks += struct.pack("!B", value)

    def write_u16(self, value: int) -> None:
        self._chunks += struct.pack("!H", value)

    def write_u32(self, value: int) -> None:
        self._chunks += struct.pack("!I", value)

    def write_bytes(self, data: bytes) -> None:
        self._chunks += data

    def patch_u16(self, offset: int, value: int) -> None:
        """Overwrite a previously written 16-bit field (e.g. RDLENGTH)."""
        self._chunks[offset : offset + 2] = struct.pack("!H", value)

    # -- names ----------------------------------------------------------------
    def write_name(self, name: Name, compress: bool = True) -> None:
        """Write ``name``, emitting a compression pointer when possible."""
        labels = name.labels
        for index in range(len(labels)):
            suffix = labels[index:]
            if compress and suffix in self._compression:
                pointer = self._compression[suffix]
                self.write_u16(_POINTER_MASK << 8 | pointer)
                return
            offset = len(self._chunks)
            if offset <= _POINTER_MAX_OFFSET:
                self._compression[suffix] = offset
            label = labels[index]
            encoded = label.encode("ascii")
            self.write_u8(len(encoded))
            self.write_bytes(encoded)
        self.write_u8(0)  # root label


class WireReader:
    """A cursor over a received message buffer."""

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        return self._offset

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def seek(self, offset: int) -> None:
        if offset < 0 or offset > len(self._data):
            raise WireError(f"seek to {offset} outside buffer of {len(self._data)}")
        self._offset = offset

    def _take(self, count: int) -> bytes:
        if self.remaining < count:
            raise WireError(f"short read: wanted {count}, have {self.remaining}")
        chunk = self._data[self._offset : self._offset + count]
        self._offset += count
        return chunk

    # -- integers ------------------------------------------------------------
    def read_u8(self) -> int:
        return self._take(1)[0]

    def read_u16(self) -> int:
        return struct.unpack("!H", self._take(2))[0]

    def read_u32(self) -> int:
        return struct.unpack("!I", self._take(4))[0]

    def read_bytes(self, count: int) -> bytes:
        return self._take(count)

    # -- names ----------------------------------------------------------------
    def read_name(self) -> Name:
        """Read a possibly-compressed name starting at the cursor.

        The cursor is left after the name's encoding at its *original*
        position (pointers are chased in a side excursion).  Each pointer
        must target an offset strictly before the previous pointer's
        target (the first, strictly before the pointer itself).  Checking
        against the *cursor* alone would not terminate: labels advance
        the cursor forward between hops, so ``[label][pointer to that
        label]`` points "backwards" on every hop while looping forever.
        Legitimate encoders always satisfy the stronger rule, because a
        pointer targets a name written earlier whose own pointers target
        names written earlier still.  The RFC 1035 §2.3.4 cap of 255
        octets per name is enforced while reading, bounding the work even
        for hostile input.
        """
        labels: list[str] = []
        cursor = self._offset
        followed_pointer = False
        end_after: int | None = None
        last_target: int | None = None
        name_octets = 0
        while True:
            if cursor >= len(self._data):
                raise WireError("name runs off the end of the message")
            length = self._data[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= len(self._data):
                    raise WireError("truncated compression pointer")
                pointer = ((length & ~_POINTER_MASK) << 8) | self._data[cursor + 1]
                if pointer >= cursor:
                    raise WireError(f"compression pointer {pointer} does not point backwards")
                if last_target is not None and pointer >= last_target:
                    raise WireError(
                        f"compression pointer {pointer} does not precede "
                        f"the previous pointer's target {last_target}"
                    )
                if not followed_pointer:
                    end_after = cursor + 2
                    followed_pointer = True
                last_target = pointer
                cursor = pointer
                continue
            if length & _POINTER_MASK:
                raise WireError(f"reserved label type 0x{length & _POINTER_MASK:02x}")
            if length == 0:
                cursor += 1
                break
            name_octets += 1 + length
            if name_octets > 254:  # 255 including the terminating root octet
                raise WireError("name exceeds the 255-octet limit")
            if cursor + 1 + length > len(self._data):
                raise WireError("label runs off the end of the message")
            raw = self._data[cursor + 1 : cursor + 1 + length]
            try:
                labels.append(raw.decode("ascii").lower())
            except UnicodeDecodeError as exc:
                raise WireError(f"non-ASCII label on the wire: {raw!r}") from exc
            cursor += 1 + length
        self._offset = end_after if end_after is not None else cursor
        # Label and name lengths were enforced octet-by-octet above, and the
        # labels are lowercased: the trusted constructor applies, skipping a
        # second validation pass per decoded name.
        return Name.from_labels(tuple(labels))
