"""Master-file (RFC 1035 §5) parsing — a practical subset.

Lets worlds and tests be specified as zone files instead of API calls:

    $ORIGIN example.com.
    $TTL 3600
    @        IN SOA  ns1 hostmaster 1 7200 3600 1209600 300
    @        IN NS   ns1
    ns1 7200 IN A    192.0.2.53
    www  300 IN A    192.0.2.80
    mail     IN MX   10 mx.provider.net.

Supported: ``$ORIGIN``/``$TTL`` directives, ``@``, relative names, blank
owner continuation (repeat the previous owner), ``;`` comments, BIND-style
TTL durations ("2d"), and the rdata types the crawl measures (A, AAAA, NS,
CNAME, MX, TXT, SOA, DNSKEY).  Unsupported: parentheses spanning lines,
``$INCLUDE``, class values other than IN.
"""

from __future__ import annotations

import base64
from typing import Optional

from repro.dns.name import Name
from repro.dns.rdtypes import (
    AAAA,
    A,
    CNAME,
    DNSKEY,
    MX,
    NS,
    Rdata,
    RdataType,
    SOA,
    TXT,
)
from repro.dns.ttl import TTLError, parse_ttl
from repro.dns.zone import Zone


class ZoneFileError(ValueError):
    """Raised with the offending line number for unparseable input."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _absolute(token: str, origin: Name) -> Name:
    if token == "@":
        return origin
    if token.endswith("."):
        return Name(token)
    return Name(token).concatenate(origin)


def _parse_rdata(rdtype: RdataType, tokens: list[str], origin: Name) -> Rdata:
    if rdtype == RdataType.A:
        (address,) = tokens
        return A(address)
    if rdtype == RdataType.AAAA:
        (address,) = tokens
        return AAAA(address)
    if rdtype == RdataType.NS:
        (target,) = tokens
        return NS(_absolute(target, origin))
    if rdtype == RdataType.CNAME:
        (target,) = tokens
        return CNAME(_absolute(target, origin))
    if rdtype == RdataType.MX:
        preference, exchange = tokens
        return MX(int(preference), _absolute(exchange, origin))
    if rdtype == RdataType.TXT:
        chunks = [token.strip('"') for token in tokens]
        return TXT(tuple(chunks))
    if rdtype == RdataType.SOA:
        mname, rname, serial, refresh, retry, expire, minimum = tokens
        return SOA(
            _absolute(mname, origin),
            _absolute(rname, origin),
            int(serial),
            parse_ttl(refresh),
            parse_ttl(retry),
            parse_ttl(expire),
            parse_ttl(minimum),
        )
    if rdtype == RdataType.DNSKEY:
        flags, protocol, algorithm, *key64 = tokens
        key = base64.b64decode("".join(key64)) if key64 else b""
        return DNSKEY(int(flags), int(protocol), int(algorithm), key)
    raise ValueError(f"unsupported rdata type {rdtype.name}")


def parse_zone(
    text: str,
    origin: Optional[str | Name] = None,
    default_ttl: int = 3600,
) -> Zone:
    """Parse a master file into a :class:`Zone`.

    ``origin`` may be given here or via a ``$ORIGIN`` directive before the
    first record (the directive wins for subsequent records).
    """
    current_origin: Optional[Name] = Name(origin) if origin is not None else None
    current_ttl = default_ttl
    zone: Optional[Zone] = None
    previous_owner: Optional[Name] = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue

        if line.startswith("$ORIGIN"):
            try:
                current_origin = Name(line.split()[1])
            except (IndexError, ValueError) as exc:
                raise ZoneFileError(f"bad $ORIGIN: {exc}", line_number) from exc
            continue
        if line.startswith("$TTL"):
            try:
                current_ttl = parse_ttl(line.split()[1])
            except (IndexError, TTLError) as exc:
                raise ZoneFileError(f"bad $TTL: {exc}", line_number) from exc
            continue
        if line.startswith("$"):
            raise ZoneFileError(f"unsupported directive {line.split()[0]}", line_number)

        if current_origin is None:
            raise ZoneFileError("no origin established before first record", line_number)
        if zone is None:
            zone = Zone(current_origin, default_ttl=current_ttl)

        # Leading whitespace means "same owner as the previous record".
        starts_indented = line[0] in " \t"
        tokens = line.split()
        if starts_indented:
            if previous_owner is None:
                raise ZoneFileError("continuation line with no previous owner", line_number)
            owner = previous_owner
        else:
            owner = _absolute(tokens.pop(0), current_origin)
        previous_owner = owner

        # Optional TTL and optional IN class, in either order.
        ttl = current_ttl
        while tokens:
            token = tokens[0]
            if token.upper() == "IN":
                tokens.pop(0)
                continue
            try:
                ttl = parse_ttl(token)
            except TTLError:
                break
            tokens.pop(0)

        if not tokens:
            raise ZoneFileError("record has no type", line_number)
        try:
            rdtype = RdataType.from_text(tokens.pop(0))
        except ValueError as exc:
            raise ZoneFileError(str(exc), line_number) from exc
        try:
            rdata = _parse_rdata(rdtype, tokens, current_origin)
        except (ValueError, TTLError) as exc:
            raise ZoneFileError(
                f"bad {rdtype.name} rdata {' '.join(tokens)!r}: {exc}", line_number
            ) from exc
        try:
            zone.add(owner, rdtype, rdata, ttl=ttl)
        except Exception as exc:
            raise ZoneFileError(str(exc), line_number) from exc

    if zone is None:
        raise ZoneFileError("zone file contains no records", 0)
    return zone
