"""Zones: authoritative data with delegations and glue.

A :class:`Zone` holds the RRsets for one zone (one origin), knows where its
zone cuts are (names below the origin owning NS RRsets), and can answer a
query with either authoritative data (AA set) or a referral carrying the
delegation's NS RRset plus any in-bailiwick glue addresses.

The glue records a parent zone serves for a delegation are the "parent
TTLs" of the paper: a parent-centric resolver caches them for the parent's
TTL, while a child-centric resolver replaces them with the child's
authoritative values (RFC 2181 §5.4.1 trust ranking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.dns.message import Message, Rcode, Section
from repro.dns.name import Name
from repro.dns.rdtypes import CNAME, NS, Rdata, RdataClass, RdataType, SOA
from repro.dns.record import ResourceRecord, RRset
from repro.dns.ttl import validate_ttl


class ZoneError(ValueError):
    """Raised for inconsistent zone contents or out-of-zone operations."""


class LookupStatus(enum.Enum):
    ANSWER = "answer"
    DELEGATION = "delegation"
    CNAME = "cname"
    NODATA = "nodata"
    NXDOMAIN = "nxdomain"


@dataclass
class LookupResult:
    """Outcome of a zone lookup.

    ``rrsets`` carries the answer (ANSWER/CNAME) or delegation NS
    (DELEGATION); ``glue`` carries in-bailiwick A/AAAA records for a
    delegation; ``soa`` is set for negative answers.
    """

    status: LookupStatus
    rrsets: list[RRset] = field(default_factory=list)
    glue: list[RRset] = field(default_factory=list)
    soa: Optional[RRset] = None


class Zone:
    """The authoritative data for one zone origin."""

    def __init__(self, origin: Name | str, default_ttl: int = 3600) -> None:
        self.origin = Name(origin)
        self.default_ttl = validate_ttl(default_ttl)
        self._rrsets: dict[tuple[Name, RdataType], RRset] = {}
        # Indexes kept for O(labels) lookups in large zones (a TLD zone in
        # the crawl experiments holds tens of thousands of delegations):
        # zone-cut owners, and every existing node (owners plus the empty
        # non-terminals above them).
        self._cuts: set[Name] = set()
        self._nodes: set[Name] = set()

    def __repr__(self) -> str:
        return f"Zone({str(self.origin)!r}, {len(self._rrsets)} rrsets)"

    # -- mutation ------------------------------------------------------------
    def add(
        self,
        name: Name | str,
        rdtype: RdataType,
        rdata: Rdata | Iterable[Rdata],
        ttl: Optional[int] = None,
    ) -> RRset:
        """Add rdata under (name, rdtype), merging into an existing RRset.

        When merging, the existing RRset's TTL wins (RFC 2181 §5.2 requires a
        single TTL per set); pass an explicit ``ttl`` and call
        :meth:`replace` to change it.
        """
        owner = self._require_in_zone(Name(name))
        rdatas = (rdata,) if isinstance(rdata, Rdata) else tuple(rdata)
        effective_ttl = self.default_ttl if ttl is None else validate_ttl(ttl)
        existing = self._rrsets.get((owner, rdtype))
        if existing is not None:
            merged = tuple(dict.fromkeys(existing.rdatas + rdatas))
            rrset = RRset(owner, rdtype, existing.ttl, merged)
        else:
            rrset = RRset(owner, rdtype, effective_ttl, rdatas)
        self._rrsets[(owner, rdtype)] = rrset
        if rdtype == RdataType.NS and owner != self.origin:
            self._cuts.add(owner)
        node = owner
        while node not in self._nodes and node.is_subdomain_of(self.origin):
            self._nodes.add(node)
            if node == self.origin:
                break
            node = node.parent()
        return rrset

    def replace(
        self,
        name: Name | str,
        rdtype: RdataType,
        rdata: Rdata | Iterable[Rdata],
        ttl: Optional[int] = None,
    ) -> RRset:
        """Replace the whole RRset under (name, rdtype).

        This is the primitive behind the paper's *renumbering* experiments
        (§4.2): swapping a server's A record to point at a new machine.
        """
        owner = self._require_in_zone(Name(name))
        self._rrsets.pop((owner, rdtype), None)
        return self.add(owner, rdtype, rdata, ttl)

    def remove(self, name: Name | str, rdtype: RdataType) -> None:
        owner = Name(name)
        self._rrsets.pop((owner, rdtype), None)
        if rdtype == RdataType.NS:
            self._cuts.discard(owner)
        # Node bookkeeping is append-only: a removed name may leave an
        # empty non-terminal behind, which still legitimately exists.

    def set_ttl(self, name: Name | str, rdtype: RdataType, ttl: int) -> RRset:
        """Change the TTL of an existing RRset (the .uy natural experiment)."""
        owner = Name(name)
        existing = self._rrsets.get((owner, rdtype))
        if existing is None:
            raise ZoneError(f"no {rdtype.name} RRset at {owner}")
        rrset = existing.with_ttl(validate_ttl(ttl))
        self._rrsets[(owner, rdtype)] = rrset
        return rrset

    def _require_in_zone(self, name: Name) -> Name:
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is not within zone {self.origin}")
        return name

    # -- inspection -----------------------------------------------------------
    def get(self, name: Name | str, rdtype: RdataType) -> Optional[RRset]:
        return self._rrsets.get((Name(name), rdtype))

    def rrsets(self) -> Iterator[RRset]:
        yield from self._rrsets.values()

    def names(self) -> set[Name]:
        return {name for name, _ in self._rrsets}

    @property
    def soa(self) -> Optional[RRset]:
        return self._rrsets.get((self.origin, RdataType.SOA))

    def delegations(self) -> Iterator[RRset]:
        """NS RRsets owned strictly below the origin — the zone cuts."""
        for (name, rdtype), rrset in self._rrsets.items():
            if rdtype == RdataType.NS and name != self.origin:
                yield rrset

    def is_delegated(self, name: Name) -> Optional[Name]:
        """The deepest zone cut at-or-above ``name``, if any.

        Note: returns the *shallowest* cut on the path from the origin down
        to ``name`` — resolution stops at the first delegation crossed.
        """
        if not self._cuts:
            return None
        depth = len(self.origin) + 1
        while depth <= len(name):
            _, candidate = name.split(depth)
            if candidate in self._cuts:
                return candidate
            depth += 1
        return None

    def name_exists(self, name: Name) -> bool:
        """Does ``name`` own records or sit above records (empty non-terminal)?"""
        return name in self._nodes

    # -- lookup -----------------------------------------------------------------
    def lookup(self, qname: Name | str, qtype: RdataType) -> LookupResult:
        """Resolve a query against this zone's data.

        The order mirrors RFC 1034 §4.3.2: first find a zone cut (referral),
        then exact data, then CNAME, then the negative cases.
        """
        name = Name(qname)
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is not within zone {self.origin}")

        cut = self.is_delegated(name)
        if cut is not None:
            ns_rrset = self._rrsets[(cut, RdataType.NS)]
            return LookupResult(
                status=LookupStatus.DELEGATION,
                rrsets=[ns_rrset],
                glue=self._glue_for(ns_rrset),
            )

        exact = self._rrsets.get((name, qtype))
        if exact is not None:
            return LookupResult(status=LookupStatus.ANSWER, rrsets=[exact])

        alias = self._rrsets.get((name, RdataType.CNAME))
        if alias is not None and qtype != RdataType.CNAME:
            chain = [alias]
            target = alias.rdatas[0]
            assert isinstance(target, CNAME)
            # Follow the chain within this zone (bounded by zone size).
            seen = {name}
            current = target.target
            while current.is_subdomain_of(self.origin) and current not in seen:
                seen.add(current)
                final = self._rrsets.get((current, qtype))
                if final is not None:
                    chain.append(final)
                    return LookupResult(status=LookupStatus.CNAME, rrsets=chain)
                next_alias = self._rrsets.get((current, RdataType.CNAME))
                if next_alias is None:
                    break
                chain.append(next_alias)
                link = next_alias.rdatas[0]
                assert isinstance(link, CNAME)
                current = link.target
            return LookupResult(status=LookupStatus.CNAME, rrsets=chain)

        if self.name_exists(name):
            return LookupResult(status=LookupStatus.NODATA, soa=self.soa)

        # RFC 1034 §4.3.3 wildcard synthesis: look for *.<closest encloser>.
        # The paper's §4 experiments answer per-probe names
        # (PROBEID.sub.cachetest.net) from a wildcard AAAA record.
        for ancestor in name.ancestors():
            if not ancestor.is_subdomain_of(self.origin):
                break
            wildcard = self._rrsets.get((ancestor.prepend("*"), qtype))
            if wildcard is not None:
                synthesized = RRset(
                    name, qtype, wildcard.ttl, wildcard.rdatas, wildcard.rdclass
                )
                return LookupResult(status=LookupStatus.ANSWER, rrsets=[synthesized])
            if self.name_exists(ancestor):
                break
        return LookupResult(status=LookupStatus.NXDOMAIN, soa=self.soa)

    def _glue_for(self, ns_rrset: RRset) -> list[RRset]:
        """In-bailiwick glue addresses for a delegation's server names.

        Glue is only required (and only present) for server names under the
        delegated zone; the paper's out-of-bailiwick experiments rely on
        the *absence* of glue forcing resolvers to resolve the server name
        themselves (§4.6).
        """
        glue: list[RRset] = []
        for rdata in ns_rrset.rdatas:
            assert isinstance(rdata, NS)
            if not rdata.target.is_subdomain_of(self.origin):
                continue
            for addr_type in (RdataType.A, RdataType.AAAA):
                addr = self._rrsets.get((rdata.target, addr_type))
                if addr is not None:
                    glue.append(addr)
        return glue

    # -- full responses --------------------------------------------------------
    def respond(self, query: Message) -> Message:
        """Build the full response message an authoritative server sends."""
        if query.question is None:
            response = query.make_response(rcode=Rcode.FORMERR)
            return response
        question = query.question
        if not question.qname.is_subdomain_of(self.origin):
            return query.make_response(rcode=Rcode.REFUSED)

        result = self.lookup(question.qname, question.qtype)

        if result.status is LookupStatus.DELEGATION:
            response = query.make_response(authoritative=False)
            for rrset in result.rrsets:
                response.add(Section.AUTHORITY, *rrset.records())
            for rrset in result.glue:
                response.add(Section.ADDITIONAL, *rrset.records())
            return response

        if result.status in (LookupStatus.ANSWER, LookupStatus.CNAME):
            response = query.make_response(authoritative=True)
            for rrset in result.rrsets:
                response.add(Section.ANSWER, *rrset.records())
                self._attach_rrsigs(response, rrset)
            apex_ns = self._rrsets.get((self.origin, RdataType.NS))
            if apex_ns is not None and question.qtype != RdataType.NS:
                response.add(Section.AUTHORITY, *apex_ns.records())
                for glue_rrset in self._glue_for(apex_ns):
                    response.add(Section.ADDITIONAL, *glue_rrset.records())
            return response

        rcode = Rcode.NXDOMAIN if result.status is LookupStatus.NXDOMAIN else Rcode.NOERROR
        response = query.make_response(rcode=rcode, authoritative=True)
        if result.soa is not None:
            response.add(Section.AUTHORITY, *result.soa.records())
        return response

    def _attach_rrsigs(self, response: Message, answered: RRset) -> None:
        """Add the RRSIG(s) covering an answered RRset (signed zones only).

        DNSSEC requires the signature — which encloses the child's TTL —
        to travel with the data (§2 of the paper); validating resolvers
        use it to clamp cached TTLs.
        """
        from repro.dns.rdtypes import RRSIG as RRSIGData

        if answered.rdtype == RdataType.RRSIG:
            return
        sig_set = self._rrsets.get((answered.name, RdataType.RRSIG))
        if sig_set is None:
            return
        for rdata in sig_set.rdatas:
            assert isinstance(rdata, RRSIGData)
            if rdata.type_covered == answered.rdtype:
                response.add(
                    Section.ANSWER,
                    *RRset(
                        answered.name, RdataType.RRSIG, sig_set.ttl, [rdata]
                    ).records(),
                )

    # -- convenience -------------------------------------------------------------
    def add_soa(
        self,
        mname: Name | str,
        rname: Name | str = "hostmaster.invalid.",
        serial: int = 1,
        refresh: int = 7200,
        retry: int = 3600,
        expire: int = 1209600,
        minimum: int = 3600,
        ttl: Optional[int] = None,
    ) -> RRset:
        rdata = SOA(Name(mname), Name(rname), serial, refresh, retry, expire, minimum)
        return self.replace(self.origin, RdataType.SOA, rdata, ttl)

    def to_text(self) -> str:
        lines = [f"; zone {self.origin}"]
        for rrset in sorted(self._rrsets.values(), key=lambda r: (r.name, int(r.rdtype))):
            lines.append(rrset.to_text())
        return "\n".join(lines)
