"""Command-line interface: operator-facing tools built on the library.

Subcommands::

    python -m repro.cli recommend   --kind registry --no-parent-control
    python -m repro.cli effective   --parent-ns 172800 --child-ns 300 ...
    python -m repro.cli hitrate     --rate-per-hour 12 --ttl 300 3600 86400
    python -m repro.cli demo-uy     [--probes 150]
    python -m repro.cli crawl       [--scale 0.001] [--seed 0]
    python -m repro.cli run t2-uy   --parallel 4 [--run-dir out/t2] [--metrics m.json]
    python -m repro.cli run ddos    --faults plan.json [--metrics m.json]
    python -m repro.cli metrics     m.json [--validate-only]
    python -m repro.cli faults      plan.json [--validate-only]

Everything prints plain text; there is no network access — the "demo" and
"crawl" subcommands run the simulation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.hitrate import analytic_hit_rate, diminishing_returns_ttl
from repro.analysis.tables import Table
from repro.core.effective_ttl import DelegationConfig, effective_record_ttl
from repro.core.recommendations import OperatorKind, ZoneSituation, recommend
from repro.resolver.policy import ResolverPolicy

_KINDS = {
    "general": OperatorKind.GENERAL_ZONE,
    "registry": OperatorKind.TLD_REGISTRY,
    "load-balanced": OperatorKind.LOAD_BALANCED,
    "ddos-protected": OperatorKind.DDOS_PROTECTED,
}

_POLICIES = {
    "child": ResolverPolicy.child_centric,
    "parent": ResolverPolicy.parent_centric,
    "capping": ResolverPolicy.capping,
    "sticky": ResolverPolicy.sticky_resolver,
    "unlinked": ResolverPolicy.unlinked,
    "validating": ResolverPolicy.validating,
}


def _cmd_recommend(args: argparse.Namespace) -> int:
    situation = ZoneSituation(
        kind=_KINDS[args.kind],
        uses_cdn_load_balancing=args.load_balancing,
        uses_dns_ddos_mitigation=args.ddos_mitigation,
        servers_in_bailiwick=not args.out_of_bailiwick,
        controls_parent_ttl=not args.no_parent_control,
        planned_changes_lead_time=args.lead_time,
    )
    print(recommend(situation).describe())
    return 0


def _cmd_effective(args: argparse.Namespace) -> int:
    config = DelegationConfig(
        parent_ns_ttl=args.parent_ns,
        child_ns_ttl=args.child_ns,
        parent_glue_ttl=None if args.out_of_bailiwick else args.parent_glue,
        child_address_ttl=args.child_address,
        in_bailiwick=not args.out_of_bailiwick,
    )
    table = Table(
        ["resolver policy", "effective NS TTL", "effective A TTL",
         "controller", "renumber switch"],
        title="Effective TTLs by resolver behaviour",
    )
    for label in args.policies:
        policy = _POLICIES[label]()
        effective = effective_record_ttl(config, policy)
        switch = (
            f"{effective.switch_time}s" if effective.switch_time is not None else "never"
        )
        table.add_row(
            label,
            f"{effective.ns_ttl}s",
            f"{effective.address_ttl}s" if effective.address_ttl is not None else "-",
            effective.controller,
            switch,
        )
    print(table.render())
    return 0


def _cmd_hitrate(args: argparse.Namespace) -> int:
    rate = args.rate_per_hour / 3600.0
    table = Table(
        ["TTL (s)", "hit rate", "expected latency"],
        title=f"Cache hit rate at {args.rate_per_hour} queries/hour "
        "(Jung et al. model)",
    )
    for ttl in args.ttl:
        hit = analytic_hit_rate(rate, ttl)
        latency = hit * args.hit_ms + (1 - hit) * args.miss_ms
        table.add_row(ttl, f"{hit * 100:.1f}%", f"{latency:.1f} ms")
    print(table.render())
    knee = diminishing_returns_ttl(rate)
    print(f"\n90% of the caching benefit is reached at TTL ~{knee:.0f}s.")
    return 0


def _cmd_demo_uy(args: argparse.Namespace) -> int:
    from repro.analysis.cdf import ECDF
    from repro.core.scenarios import scenario_uy_natural

    print("Running the .uy natural experiment (paper §5.3)...")
    run = scenario_uy_natural(seed=args.seed, probes=args.probes, duration=3600)
    before = ECDF(run.before.rtts_ms())
    after = ECDF(run.after.rtts_ms())
    table = Table(["configuration", "median", "p75", "p95"], title=".uy NS query RTT")
    table.add_row("TTL 300s", f"{before.median:.1f} ms",
                  f"{before.quantile(0.75):.1f} ms", f"{before.quantile(0.95):.1f} ms")
    table.add_row("TTL 86400s", f"{after.median:.1f} ms",
                  f"{after.quantile(0.75):.1f} ms", f"{after.quantile(0.95):.1f} ms")
    print(table.render())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Re-analyze an archived measurement dataset (JSON lines)."""
    if getattr(args, "querylog", False):
        return _cmd_analyze_querylog(args)
    from repro.analysis.cdf import ECDF
    from repro.analysis.centricity import classify_active_ttls
    from repro.atlas.datasets import load_results

    results = load_results(args.dataset)
    valid = results.valid()
    summary = results.summary()
    table = Table(["metric", "value"], title=f"Dataset: {args.dataset}")
    for key in ("probes", "vps", "queries", "responses_valid",
                "responses_discarded", "resolvers", "ases"):
        table.add_row(key, summary[key])
    print(table.render())

    ttls = valid.ttls()
    if ttls:
        cdf = ECDF(ttls)
        print(f"\nTTLs: n={len(cdf)} median={cdf.median:.0f}s "
              f"p90={cdf.quantile(0.9):.0f}s max={cdf.max:.0f}s")
    rtts = valid.rtts_ms()
    if rtts:
        cdf = ECDF(rtts)
        print(f"RTTs: median={cdf.median:.1f}ms p75={cdf.quantile(0.75):.1f}ms "
              f"p95={cdf.quantile(0.95):.1f}ms")
    if args.parent_ttl is not None and args.child_ttl is not None and ttls:
        breakdown = classify_active_ttls(
            ttls, parent_ttl=args.parent_ttl, child_ttl=args.child_ttl
        )
        print(
            f"centricity: child {breakdown.child_fraction * 100:.1f}% / "
            f"parent {breakdown.parent_fraction * 100:.1f}% / "
            f"capped {breakdown.capped_fraction * 100:.1f}%"
        )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.core.audit import audit_zone, render_report
    from repro.dns.zonefile import parse_zone

    with open(args.zonefile, "r", encoding="ascii") as handle:
        zone = parse_zone(handle.read(), origin=args.origin)
    parent = None
    if args.parent_zonefile:
        with open(args.parent_zonefile, "r", encoding="ascii") as handle:
            parent = parse_zone(handle.read(), origin=args.parent_origin)
    findings = audit_zone(zone, parent)
    print(render_report(findings))
    return 1 if any(f.severity.value == "error" for f in findings) else 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    from repro.crawler import Crawler, build_crawl_universe
    from repro.crawler.report import bailiwick_census, record_counts

    print(f"Building a scale={args.scale} universe (seed {args.seed})...")
    universe = build_crawl_universe(scale=args.scale, seed=args.seed)
    result = Crawler(universe).crawl()
    table = Table(
        ["list", "domains", "responsive", "NS-responders", "% out-of-bailiwick"],
        title="Crawl summary (paper Tables 5 and 9)",
    )
    counts = record_counts(result)
    census = bailiwick_census(result)
    for name in counts:
        table.add_row(
            name,
            counts[name].domains,
            counts[name].responsive,
            census[name].respond_ns,
            f"{census[name].percent_out:.1f}%",
        )
    print(table.render())
    return 0


# ------------------------------------------------------- sharded campaigns

#: Campaigns `repro run` can execute through repro.runner.
_RUN_CAMPAIGNS = (
    "t2-uy", "t2-anicuy", "t2-googleco", "t10-controlled", "crawl", "ddos",
    "prefetch", "ecs", "push",
)

#: Campaigns that accept a --faults schedule (the controlled-TTL and crawl
#: campaigns build many isolated worlds whose endpoints a plan cannot
#: meaningfully target, so they reject one instead of ignoring it).
_FAULTABLE_CAMPAIGNS = ("t2-uy", "t2-anicuy", "t2-googleco", "ddos", "push")

#: Campaigns whose resolver populations can be armed with --predict
#: (refresh-ahead + RFC 8767 serve-stale; see docs/prediction.md).
_PREDICT_CAMPAIGNS = ("t2-uy", "t2-anicuy", "t2-googleco")

#: Campaigns that can spill mid-shard world snapshots (--snapshot-every):
#: the centricity campaigns, whose shards run one long Measurement with a
#: resumable cursor.  The others' shards are single world-build-and-run
#: cells too short to be worth snapshotting.
_SNAPSHOT_CAMPAIGNS = ("t2-uy", "t2-anicuy", "t2-googleco")

#: Worlds `repro serve` can front; mirrors repro.serve.config.WORLD_BUILDERS
#: (kept literal here so --help needs no heavyweight import).
_SERVE_WORLDS = ("cl", "uy", "googleco", "nl", "controlled")


def _centricity_report(title: str, run) -> str:
    table = Table(["metric", "value"], title=title)
    for key in ("probes", "vps", "queries", "responses_valid",
                "responses_discarded", "resolvers"):
        table.add_row(key, run.summary[key])
    b = run.breakdown
    table.add_row("child-centric", f"{b.child_fraction * 100:.1f}%")
    table.add_row("parent-centric", f"{b.parent_fraction * 100:.1f}%")
    return table.render()


def _cmd_run(args: argparse.Namespace) -> int:
    """Run one campaign sharded, with progress telemetry on stderr."""
    from repro.runner.checkpoint import CheckpointMismatch

    try:
        if args.profile is not None and args.parallel <= 1:
            # Serial: profile the whole campaign in-process.  Under
            # --parallel the executor profiles each shard instead
            # (PATH.shard-NNNN), since workers are separate processes.
            import cProfile

            profiler = cProfile.Profile()
            try:
                status = profiler.runcall(_cmd_run_inner, args)
            finally:
                profiler.dump_stats(args.profile)
                if not args.quiet:
                    print(f"profile written to {args.profile}", file=sys.stderr)
            return status
        return _cmd_run_inner(args)
    except CheckpointMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: pass a fresh --run-dir (or delete the old one) to "
              "start a new campaign", file=sys.stderr)
        return 2


def _write_metrics(args: argparse.Namespace, snapshot) -> None:
    """Write the campaign's merged snapshot as canonical JSON.

    Sim-domain only by default: those bytes are identical for any worker
    count (the determinism contract); ``--metrics-include-host`` opts
    into the wall-clock telemetry too, giving up byte-stability.
    """
    if args.metrics is None:
        return
    if snapshot is None:
        from repro.metrics import MetricsSnapshot

        snapshot = MetricsSnapshot.empty()
    with open(args.metrics, "w", encoding="ascii") as handle:
        handle.write(snapshot.to_json(include_host=args.metrics_include_host))
    if not args.quiet:
        print(f"metrics written to {args.metrics}", file=sys.stderr)


def _load_fault_plan(args: argparse.Namespace):
    """Read and validate ``--faults``; returns ``(plan, exit_code)``."""
    from repro.faults import FaultPlan, validate_json

    if args.faults is None:
        return None, 0
    if args.campaign not in _FAULTABLE_CAMPAIGNS:
        print(f"error: --faults is not supported for {args.campaign} "
              f"(faultable campaigns: {', '.join(_FAULTABLE_CAMPAIGNS)})",
              file=sys.stderr)
        return None, 2
    try:
        with open(args.faults, "r", encoding="ascii") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: cannot read fault plan {args.faults}: {exc.strerror}",
              file=sys.stderr)
        return None, 2
    errors = validate_json(text)
    if errors:
        for error in errors:
            print(f"invalid fault plan: {error}", file=sys.stderr)
        return None, 2
    return FaultPlan.from_json(text), 0


def _cmd_run_inner(args: argparse.Namespace) -> int:
    from repro.runner.progress import render_event

    def progress(event) -> None:
        if not args.quiet:
            print(render_event(event), file=sys.stderr, flush=True)

    faults, status = _load_fault_plan(args)
    if status:
        return status
    if args.predict and args.campaign not in _PREDICT_CAMPAIGNS:
        print(f"error: --predict is not supported for {args.campaign} "
              f"(predictive campaigns: {', '.join(_PREDICT_CAMPAIGNS)})",
              file=sys.stderr)
        return 2
    if args.snapshot_every:
        if args.campaign not in _SNAPSHOT_CAMPAIGNS:
            print(f"error: --snapshot-every is not supported for "
                  f"{args.campaign} (snapshot campaigns: "
                  f"{', '.join(_SNAPSHOT_CAMPAIGNS)})",
                  file=sys.stderr)
            return 2
        if args.run_dir is None:
            print("error: --snapshot-every needs --run-dir (snapshots live "
                  "in the checkpoint directory)", file=sys.stderr)
            return 2
    common = dict(
        seed=args.seed,
        parallelism=args.parallel,
        run_dir=args.run_dir,
        progress=progress,
        # Serial --profile is handled whole-campaign by _cmd_run; only the
        # pool path profiles per shard here.
        profile=args.profile if args.parallel > 1 else None,
    )
    if args.campaign == "t2-uy":
        from repro.core.scenarios import scenario_uy_ns

        run = scenario_uy_ns(
            probes=args.probes, duration=args.duration, shards=args.shards,
            faults=faults, predict=args.predict,
            snapshot_every=args.snapshot_every, **common
        )
        print(_centricity_report("T2: .uy-NS centricity campaign", run))
        _write_metrics(args, run.metrics)
    elif args.campaign == "t2-anicuy":
        from repro.core.scenarios import scenario_anicuy_a

        run = scenario_anicuy_a(
            probes=args.probes, duration=args.duration, shards=args.shards,
            faults=faults, predict=args.predict,
            snapshot_every=args.snapshot_every, **common
        )
        print(_centricity_report("T2: a.nic.uy-A centricity campaign", run))
        _write_metrics(args, run.metrics)
    elif args.campaign == "t2-googleco":
        from repro.core.scenarios import scenario_googleco_ns

        run = scenario_googleco_ns(
            probes=args.probes, duration=args.duration, shards=args.shards,
            faults=faults, predict=args.predict,
            snapshot_every=args.snapshot_every, **common
        )
        print(_centricity_report("T2: google.co-NS centricity campaign", run))
        _write_metrics(args, run.metrics)
    elif args.campaign == "ddos":
        from repro.core.scenarios import scenario_ddos_resilience

        run = scenario_ddos_resilience(
            attack_seconds=args.duration, faults=faults, **common
        )
        table = Table(
            ["TTL (s)", "availability", "serve-stale", "stale fraction"],
            title=f"§6.1 resilience: {args.duration:.0f}s authoritative outage",
        )
        for ttl in sorted({tier.ttl for tier in run.tiers}):
            plain = run.tier(ttl, serve_stale=False)
            rescued = run.tier(ttl, serve_stale=True)
            table.add_row(
                ttl,
                f"{plain.availability * 100:.0f}%",
                f"{rescued.availability * 100:.0f}%",
                f"{rescued.served_stale_fraction * 100:.0f}%",
            )
        print(table.render())
        _write_metrics(args, run.metrics)
    elif args.campaign == "prefetch":
        from repro.core.scenarios import scenario_prefetch_tradeoff

        run = scenario_prefetch_tradeoff(duration=args.duration, **common)
        table = Table(
            ["TTL (s)", "mode", "queries", "hit rate", "auth queries",
             "p99 (ms)", "refreshes", "stale"],
            title="Prefetch trade-off: client p99 and authoritative volume "
                  "vs TTL",
        )
        for cell in run.cells:
            table.add_row(
                cell.ttl, cell.mode, cell.queries,
                f"{cell.hit_rate * 100:.1f}%", cell.auth_queries,
                f"{cell.p99_ms:.2f}", cell.refreshes, cell.stale_answered,
            )
        print(table.render())
        _write_metrics(args, run.metrics)
    elif args.campaign == "ecs":
        from repro.core.scenarios import scenario_ecs_cdn

        run = scenario_ecs_cdn(duration=args.duration, **common)
        table = Table(
            ["TTL (s)", "mode", "queries", "hit rate", "auth queries",
             "p50 (ms)", "p95 (ms)", "local site", "scoped"],
            title="ECS + CDN: client-to-content latency and hit rate vs TTL",
        )
        for cell in run.cells:
            table.add_row(
                cell.ttl, cell.mode, cell.queries,
                f"{cell.hit_rate * 100:.1f}%", cell.auth_queries,
                f"{cell.p50_ms:.2f}", f"{cell.p95_ms:.2f}",
                f"{cell.local_site_rate * 100:.0f}%", cell.scoped_entries,
            )
        print(table.render())
        _write_metrics(args, run.metrics)
    elif args.campaign == "push":
        from repro.core.scenarios import scenario_push_vs_poll

        run = scenario_push_vs_poll(duration=args.duration, faults=faults,
                                    **common)
        table = Table(
            ["plan", "TTL (s)", "mode", "answered", "stale", "staleness (s)",
             "auth queries", "notifies", "resets"],
            title="Push vs poll: staleness window and authoritative volume "
                  "vs TTL",
        )
        for cell in run.cells:
            table.add_row(
                cell.plan, cell.ttl, cell.mode,
                f"{cell.answered_rate * 100:.0f}%",
                f"{cell.stale_rate * 100:.1f}%",
                f"{cell.mean_staleness_s:.1f}",
                cell.auth_queries, cell.notifications, cell.session_resets,
            )
        print(table.render())
        _write_metrics(args, run.metrics)
    elif args.campaign == "t10-controlled":
        from repro.analysis.cdf import ECDF
        from repro.core.scenarios import scenario_controlled_ttl
        from repro.metrics import merge_snapshots

        runs = scenario_controlled_ttl(
            probes=args.probes, duration=args.duration, **common
        )
        table = Table(
            ["experiment", "queries", "auth queries", "median RTT"],
            title="Table 10: controlled TTL experiments",
        )
        for label, run in runs.items():
            cdf = ECDF(run.rtts_ms())
            table.add_row(
                label, run.client_summary["queries"], run.auth_queries,
                f"{cdf.median:.1f} ms",
            )
        print(table.render())
        _write_metrics(
            args,
            merge_snapshots(
                run.metrics for run in runs.values() if run.metrics is not None
            ),
        )
    else:  # crawl
        from repro.crawler.crawl import crawl_parallel
        from repro.crawler.report import record_counts

        result, queries, metrics = crawl_parallel(
            scale=args.scale,
            seed=args.seed,
            parallelism=args.parallel,
            shards=args.shards,
            run_dir=args.run_dir,
            progress=progress,
            profile=args.profile if args.parallel > 1 else None,
        )
        counts = record_counts(result)
        table = Table(["list", "domains", "responsive"],
                      title=f"Sharded crawl ({queries} queries)")
        for name in counts:
            table.add_row(name, counts[name].domains, counts[name].responsive)
        print(table.render())
        _write_metrics(args, metrics)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Validate and render a metrics JSON file written by ``repro run``."""
    from repro.metrics import MetricsSnapshot, render_snapshot, validate_json

    with open(args.file, "r", encoding="ascii") as handle:
        text = handle.read()
    errors = validate_json(text)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 2
    snapshot = MetricsSnapshot.from_json(text)
    if args.validate_only:
        print(f"{args.file}: valid ({len(snapshot)} metrics)")
        return 0
    print(render_snapshot(snapshot, title=args.file))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Validate and render a fault plan for ``repro run --faults``."""
    from repro.faults import FaultPlan, validate_json

    try:
        with open(args.file, "r", encoding="ascii") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"error: cannot read fault plan {args.file}: {exc.strerror}",
              file=sys.stderr)
        return 2
    errors = validate_json(text)
    if errors:
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        return 2
    plan = FaultPlan.from_json(text)
    if args.validate_only:
        print(f"{args.file}: valid ({len(plan)} faults)")
        return 0
    start, end = plan.window()
    title = f"Fault plan {plan.name or args.file} (seed {plan.seed}, " \
            f"window {start:.0f}-{end:.0f}s)"
    table = Table(["#", "kind", "start (s)", "duration (s)", "target", "detail"],
                  title=title)
    for index, spec in enumerate(plan):
        details = []
        if spec.rate is not None:
            details.append(f"rate={spec.rate}")
        if spec.delay_ms is not None:
            details.append(f"delay={spec.delay_ms}ms")
        if spec.site is not None:
            details.append(f"site={spec.site}")
        if spec.src is not None:
            details.append(f"src={spec.src}")
        table.add_row(
            index, spec.kind, f"{spec.start:.0f}", f"{spec.duration:.0f}",
            spec.target or "*", " ".join(details) or "-",
        )
    print(table.render())
    return 0


_ARTIFACT_RUNNERS = {}


def _artifact(name):
    def register(func):
        _ARTIFACT_RUNNERS[name] = func
        return func

    return register


@_artifact("table1")
def _run_table1(args) -> str:
    from repro.analysis.tables import Table
    from repro.core.scenarios import scenario_table1_cl

    rows = scenario_table1_cl(args.seed)
    table = Table(["Q / Type", "Server", "Response", "TTL", "Sec.", "AA"],
                  title="Table 1: a.nic.cl TTLs")
    for row in rows:
        table.add_row(row.query, row.server, row.response, row.ttl,
                      row.section, "*" if row.authoritative else "")
    return table.render()


@_artifact("fig1")
def _run_fig1(args) -> str:
    from repro.analysis.tables import render_cdf
    from repro.core.scenarios import scenario_anicuy_a, scenario_uy_ns

    ns_run = scenario_uy_ns(args.seed, probes=args.probes, duration=3600)
    a_run = scenario_anicuy_a(args.seed, probes=args.probes, duration=3600)
    return render_cdf(
        {".uy-NS": ns_run.results.ttls(), "a.nic.uy-A": a_run.results.ttls()},
        title="Figure 1: observed TTLs", unit="s",
    )


@_artifact("fig6")
def _run_fig6(args) -> str:
    from repro.analysis.tables import render_timeseries
    from repro.core.scenarios import scenario_bailiwick

    run = scenario_bailiwick(args.seed, in_bailiwick=True, probes=args.probes)
    series = {
        ("old" if key == run.old_label else "new"): bins
        for key, bins in run.results.answer_timeseries(600.0).items()
    }
    return render_timeseries(series, 600.0, title="Figure 6: in-bailiwick renumbering")


@_artifact("fig7")
def _run_fig7(args) -> str:
    from repro.analysis.tables import render_timeseries
    from repro.core.scenarios import scenario_bailiwick

    run = scenario_bailiwick(args.seed, in_bailiwick=False, probes=args.probes)
    series = {
        ("old" if key == run.old_label else "new"): bins
        for key, bins in run.results.answer_timeseries(600.0).items()
    }
    return render_timeseries(series, 600.0, title="Figure 7: out-of-bailiwick renumbering")


@_artifact("fig10")
def _run_fig10(args) -> str:
    from repro.analysis.cdf import ECDF
    from repro.core.scenarios import scenario_uy_natural

    run = scenario_uy_natural(args.seed, probes=args.probes, duration=3600)
    before = ECDF(run.before.rtts_ms())
    after = ECDF(run.after.rtts_ms())
    return (
        "Figure 10: .uy latency\n"
        f"TTL 300s:   median {before.median:.1f} ms, p75 {before.quantile(0.75):.1f} ms\n"
        f"TTL 86400s: median {after.median:.1f} ms, p75 {after.quantile(0.75):.1f} ms"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve one of the simulated worlds on a real UDP+TCP port."""
    from repro.serve.config import ServeConfig
    from repro.serve.workers import run_workers

    config = ServeConfig(
        world=args.world,
        seed=args.seed,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        rrl_rate=args.rrl_rate,
        max_udp_payload=args.max_udp_payload,
        time_scale=args.time_scale,
        predict=args.predict,
        ecs=args.ecs,
        batch_size=args.batch,
        batching=not args.no_batch,
        memo=not args.no_memo,
        uvloop=args.uvloop,
        prewarm=args.prewarm,
        querylog_path=args.querylog,
        metrics_path=args.metrics,
    )
    return run_workers(config)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Fire wire-format queries at a live server and report."""
    from repro.loadgen.client import LoadgenConfig, run_loadgen
    from repro.metrics import MetricsRegistry

    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        rate_qps=args.rate,
        duration_s=args.duration,
        mode=args.mode,
        arrivals=args.arrivals,
        concurrency=args.concurrency,
        population=args.population,
        zipf_exponent=args.zipf,
        qname_template=args.qname_template,
        seed=args.seed,
        timeout_s=args.timeout,
        retries=args.retries,
        use_edns=not args.no_edns,
        sockets=args.sockets,
        count=args.count,
        parse_responses=not args.no_parse,
        dump_responses=args.dump_responses,
        ecs_subnets=args.ecs_subnets,
    )
    report = run_loadgen(config)
    if args.json:
        import json

        payload = {
            "mode": report.mode,
            "offered_qps": report.offered_qps,
            "achieved_qps": report.achieved_qps,
            "wall_s": report.wall_s,
            "sent": report.sent,
            "received": report.received,
            "lost": report.lost,
            "loss_rate": report.loss_rate,
            "attempts": report.attempts,
            "parse_errors": report.parse_errors,
            "rcodes": {str(code): n for code, n in sorted(report.rcodes.items())},
        }
        if report.latency is not None:
            payload["latency_ms"] = {
                "p50": report.latency.median,
                "p95": report.latency.p95,
                "p99": report.latency.p99,
                "mean": report.latency.mean,
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.metrics:
        registry = MetricsRegistry()
        report.to_metrics(registry)
        with open(args.metrics, "w", encoding="utf-8") as stream:
            stream.write(registry.snapshot().to_json(include_host=True) + "\n")
    # A run that lost every query (or parsed nothing) is a failure.
    return 0 if report.received > 0 else 1


def _cmd_analyze_querylog(args: argparse.Namespace) -> int:
    """§3.4-style passive analysis over a live server's query log."""
    from repro.analysis.cdf import ECDF
    from repro.analysis.interarrival import (
        min_interarrival_per_group,
        queries_per_group,
    )
    from repro.server.querylog import QueryLog

    log = QueryLog.read_jsonl(args.dataset)
    groups = log.by_group()
    table = Table(["metric", "value"], title=f"Query log: {args.dataset}")
    table.add_row("queries", len(log))
    table.add_row("clients", len(log.unique_clients()))
    table.add_row("groups (client, qname)", len(groups))
    print(table.render())
    by_server = log.query_count_by_server()
    if len(by_server) > 1:
        # Multi-worker logs: the per-worker split is how flow-steering
        # imbalance (one worker taking all traffic) becomes visible.
        split = Table(["server", "queries", "share"], title="Queries by server")
        for server, count in sorted(by_server.items()):
            split.add_row(server, count, f"{count / len(log):.1%}")
        print()
        print(split.render())
    counts = queries_per_group(groups)
    if counts:
        cdf = ECDF(counts)
        print(f"\nqueries/group: n={len(cdf)} median={cdf.median:.0f} "
              f"p90={cdf.quantile(0.9):.0f} max={cdf.max:.0f}")
    minima = min_interarrival_per_group(groups)
    if minima:
        cdf = ECDF(minima)
        print(f"min interarrival s: median={cdf.median:.1f} "
              f"p25={cdf.quantile(0.25):.1f} p75={cdf.quantile(0.75):.1f}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    runner = _ARTIFACT_RUNNERS.get(args.artifact)
    if runner is None:
        print(f"unknown artifact {args.artifact!r}; available: "
              + ", ".join(sorted(_ARTIFACT_RUNNERS)), file=sys.stderr)
        print("(the full set of artifacts lives in benchmarks/ — run "
              "`pytest benchmarks/ --benchmark-only`)", file=sys.stderr)
        return 2
    print(runner(args))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Tools from the 'Cache Me If You Can' reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("recommend", help="§6.3 TTL guidance for a zone")
    rec.add_argument("--kind", choices=sorted(_KINDS), default="general")
    rec.add_argument("--load-balancing", action="store_true")
    rec.add_argument("--ddos-mitigation", action="store_true")
    rec.add_argument("--out-of-bailiwick", action="store_true")
    rec.add_argument("--no-parent-control", action="store_true")
    rec.add_argument("--lead-time", type=int, default=None,
                     help="seconds of notice before planned changes")
    rec.set_defaults(func=_cmd_recommend)

    eff = sub.add_parser("effective", help="effective TTLs for a delegation")
    eff.add_argument("--parent-ns", type=int, required=True)
    eff.add_argument("--child-ns", type=int, required=True)
    eff.add_argument("--parent-glue", type=int, default=None)
    eff.add_argument("--child-address", type=int, default=None)
    eff.add_argument("--out-of-bailiwick", action="store_true")
    eff.add_argument("--policies", nargs="+", choices=sorted(_POLICIES),
                     default=["child", "parent", "capping", "sticky"])
    eff.set_defaults(func=_cmd_effective)

    hit = sub.add_parser("hitrate", help="hit rate / latency vs TTL")
    hit.add_argument("--rate-per-hour", type=float, default=12.0)
    hit.add_argument("--ttl", type=int, nargs="+",
                     default=[60, 300, 900, 1800, 3600, 28800, 86400])
    hit.add_argument("--hit-ms", type=float, default=1.0)
    hit.add_argument("--miss-ms", type=float, default=100.0)
    hit.set_defaults(func=_cmd_hitrate)

    demo = sub.add_parser("demo-uy", help="run the §5.3 natural experiment")
    demo.add_argument("--probes", type=int, default=150)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo_uy)

    analyze = sub.add_parser(
        "analyze", help="re-analyze an archived measurement dataset"
    )
    analyze.add_argument("dataset", help="JSON-lines file from repro.atlas.datasets")
    analyze.add_argument("--parent-ttl", type=int, default=None)
    analyze.add_argument("--child-ttl", type=int, default=None)
    analyze.add_argument("--querylog", action="store_true",
                         help="treat the file as a `repro serve --querylog` "
                              "JSONL log and run the §3.4 interarrival "
                              "analysis instead")
    analyze.set_defaults(func=_cmd_analyze)

    audit = sub.add_parser("audit", help="lint a zone file against §6.3")
    audit.add_argument("zonefile", help="path to the child zone's master file")
    audit.add_argument("--origin", default=None,
                       help="zone origin if the file has no $ORIGIN")
    audit.add_argument("--parent-zonefile", default=None,
                       help="master file with the parent's delegation view")
    audit.add_argument("--parent-origin", default=None)
    audit.set_defaults(func=_cmd_audit)

    crawl = sub.add_parser("crawl", help="run the §5.1 crawl pipeline")
    crawl.add_argument("--scale", type=float, default=0.001)
    crawl.add_argument("--seed", type=int, default=0)
    crawl.set_defaults(func=_cmd_crawl)

    run = sub.add_parser(
        "run", help="run a campaign sharded over N workers (repro.runner)"
    )
    run.add_argument("campaign", choices=_RUN_CAMPAIGNS,
                     help="which campaign to execute")
    run.add_argument("--parallel", type=int, default=1,
                     help="worker processes (1 = serial in-process fallback)")
    from repro.runner.shard import DEFAULT_SHARDS

    run.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                     help=f"shard count (default {DEFAULT_SHARDS}; results "
                          "depend on the shard plan, never on the worker "
                          "count, so the same --shards gives the same "
                          "output at any --parallel)")
    run.add_argument("--probes", type=int, default=120)
    run.add_argument("--duration", type=float, default=3600.0)
    run.add_argument("--scale", type=float, default=0.001,
                     help="crawl campaign: list scale factor")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--run-dir", default=None,
                     help="checkpoint directory; rerunning resumes from "
                          "completed shards")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the progress ticker on stderr")
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="write the campaign's merged metrics snapshot as "
                          "canonical JSON (sim domain only: byte-identical "
                          "for any --parallel at a fixed shard plan)")
    run.add_argument("--metrics-include-host", action="store_true",
                     help="also export host-domain execution telemetry "
                          "(wall times, retries); gives up byte-stability")
    run.add_argument("--faults", default=None, metavar="PATH",
                     help="fault plan JSON (repro.faults/v1) scheduling "
                          "outages/loss/SERVFAILs against the campaign's "
                          "virtual clock; deterministic at any --parallel")
    run.add_argument("--predict", action="store_true",
                     help="arm every resolver with the predictive policy: "
                          "refresh-ahead for hot names plus RFC 8767 "
                          "stale-while-revalidate")
    run.add_argument("--profile", default=None, metavar="PATH",
                     help="write cProfile stats: the whole campaign to PATH "
                          "when serial, one PATH.shard-NNNN per shard under "
                          "--parallel (inspect with pstats / snakeviz)")
    run.add_argument("--snapshot-every", type=int, default=0, metavar="N",
                     help="with --run-dir on a t2-* campaign: spill a world "
                          "snapshot every N queries so a killed run resumes "
                          "mid-shard instead of restarting the shard "
                          "(0 = shard-boundary checkpoints only)")
    run.set_defaults(func=_cmd_run)

    metrics = sub.add_parser(
        "metrics", help="validate and render a metrics JSON snapshot"
    )
    metrics.add_argument("file", help="snapshot written by `repro run --metrics`")
    metrics.add_argument("--validate-only", action="store_true",
                         help="check the file against the schema and exit")
    metrics.set_defaults(func=_cmd_metrics)

    faults = sub.add_parser(
        "faults", help="validate and render a fault plan (repro.faults/v1)"
    )
    faults.add_argument("file", help="plan JSON for `repro run --faults`")
    faults.add_argument("--validate-only", action="store_true",
                        help="check the file against the schema and exit")
    faults.set_defaults(func=_cmd_faults)

    serve = sub.add_parser(
        "serve", help="serve a simulated world live on a UDP+TCP port"
    )
    serve.add_argument("--world", choices=sorted(_SERVE_WORLDS), default="nl",
                       help="which canonical world the resolver fronts")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 = ephemeral (the ready line prints the port); "
                            "--workers > 1 needs an explicit port")
    serve.add_argument("--workers", type=int, default=1,
                       help="SO_REUSEPORT worker processes, one core each")
    serve.add_argument("--max-inflight", type=int, default=256,
                       help="admitted-but-unanswered budget before shedding "
                            "with an early SERVFAIL")
    serve.add_argument("--rrl-rate", type=int, default=0,
                       help="per-client responses/second; 0 disables RRL")
    serve.add_argument("--max-udp-payload", type=int, default=1232,
                       help="largest UDP response; larger answers truncate")
    serve.add_argument("--time-scale", type=float, default=1.0,
                       help="sim seconds per wall second (TTLs age faster)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--batch", type=int, default=32, metavar="N",
                       help="datagrams drained/flushed per syscall on the "
                            "UDP hot path (default 32)")
    serve.add_argument("--no-batch", action="store_true",
                       help="force the portable one-datagram I/O loop "
                            "instead of recvmmsg/sendmmsg")
    serve.add_argument("--no-memo", action="store_true",
                       help="disable the encode-once hot-response memo")
    serve.add_argument("--uvloop", choices=["auto", "on", "off"],
                       default="auto",
                       help="event loop: auto uses uvloop when importable, "
                            "on requires it, off sticks to stdlib asyncio")
    serve.add_argument("--prewarm", type=int, default=0, metavar="N",
                       help="resolve the top-N hot names into each worker's "
                            "cache before serving (rank 0 = most popular)")
    serve.add_argument("--ecs", action="store_true",
                       help="accept RFC 7871 client-subnet options, forward "
                            "them upstream, and cache scoped answers per "
                            "subnet (see docs/ecs.md)")
    serve.add_argument("--predict", action="store_true",
                       help="refresh hot names ahead of expiry and serve "
                            "stale while revalidating (RFC 8767)")
    serve.add_argument("--querylog", default=None, metavar="PATH",
                       help="append ENTRADA-style JSONL entries for "
                            "`repro analyze --querylog`")
    serve.add_argument("--metrics", default=None, metavar="PATH",
                       help="write a metrics snapshot (host domain included) "
                            "on shutdown; workers are merged")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="open-loop wire-level load against a live server"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--rate", type=float, default=100.0,
                         help="offered queries/second (open-loop)")
    loadgen.add_argument("--duration", type=float, default=5.0)
    loadgen.add_argument("--mode", choices=["open", "closed"], default="open")
    loadgen.add_argument("--arrivals", choices=["poisson", "fixed"],
                         default="poisson")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="closed-loop: queries kept in flight")
    loadgen.add_argument("--population", type=int, default=500,
                         help="distinct qnames under the Zipf law")
    loadgen.add_argument("--zipf", type=float, default=1.0,
                         help="Zipf exponent (0 = uniform popularity)")
    loadgen.add_argument("--qname-template", default="www.domain{}.nl.",
                         help="rank -> qname template; {} is the Zipf rank")
    loadgen.add_argument("--timeout", type=float, default=2.0)
    loadgen.add_argument("--retries", type=int, default=2)
    loadgen.add_argument("--no-edns", action="store_true",
                         help="send plain 512-byte-limit queries")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--sockets", type=int, default=1, metavar="N",
                         help="UDP source sockets to spread queries over "
                              "(SO_REUSEPORT servers hash each socket to "
                              "one worker; use several to reach them all)")
    loadgen.add_argument("--count", type=int, default=None, metavar="N",
                         help="closed-loop only: stop after exactly N "
                              "queries instead of after --duration")
    loadgen.add_argument("--no-parse", action="store_true",
                         help="skip full response decoding; read the rcode "
                              "from the header (for throughput benches)")
    loadgen.add_argument("--dump-responses", default=None, metavar="PATH",
                         help="write one sha256 per answered query "
                              "(response bytes, ID zeroed) in arrival order")
    loadgen.add_argument("--ecs-subnets", type=int, default=0, metavar="N",
                         help="attach an RFC 7871 ECS option sampling N "
                              "distinct client /24s (0 = no ECS); pair "
                              "with `repro serve --ecs`")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of text")
    loadgen.add_argument("--metrics", default=None, metavar="PATH",
                         help="write the run's metrics snapshot JSON")
    loadgen.set_defaults(func=_cmd_loadgen)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate one paper artifact at the terminal"
    )
    reproduce.add_argument("artifact", help="e.g. table1, fig1, fig6, fig7, fig10")
    reproduce.add_argument("--probes", type=int, default=120)
    reproduce.add_argument("--seed", type=int, default=0)
    reproduce.set_defaults(func=_cmd_reproduce)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout closed mid-write (e.g. piped into `head`): exit quietly.
        return 0


if __name__ == "__main__":
    sys.exit(main())
