"""Probes and vantage points."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Endpoint
from repro.resolver.stub import StubResolver


@dataclass
class Probe:
    """One measurement device with one or more configured resolvers."""

    probe_id: int
    endpoint: Endpoint
    stubs: list[StubResolver]

    @property
    def region(self):
        return self.endpoint.region

    @property
    def asn(self) -> int:
        return self.endpoint.asn

    def vantage_points(self) -> list["VantagePoint"]:
        return [
            VantagePoint(self, stub, slot) for slot, stub in enumerate(self.stubs)
        ]


@dataclass
class VantagePoint:
    """A (probe, resolver) pair — the paper's measurement unit (§3.2).

    "Many Atlas probes have multiple recursive resolvers ... so we treat
    each combination of probe and unique recursive resolver as a VP."

    ``vp_id`` is built from the probe id and the resolver *slot* (not the
    resolver's address) so the same logical VP keeps its identity across
    experiments run in freshly built worlds — the paper's Figure 8 matches
    VPs between the out-of-bailiwick and in-bailiwick campaigns this way.
    """

    probe: Probe
    stub: StubResolver
    slot: int = 0

    @property
    def vp_id(self) -> str:
        return f"{self.probe.probe_id}#{self.slot}"

    @property
    def resolver_address(self) -> str:
        return self.stub.resolver.address

    def __repr__(self) -> str:
        return f"VantagePoint({self.vp_id})"
