"""A RIPE-Atlas-like measurement platform.

The paper measures from ~10k Atlas probes; each (probe, resolver) pair is a
*vantage point* (VP), giving ~15k VPs across ~3.3k ASes.  This package
generates such populations (:mod:`repro.atlas.population`), schedules
periodic DNS measurements from every VP (:mod:`repro.atlas.measurement`),
and collects results into datasets with the same validity filtering the
paper applies (:mod:`repro.atlas.results`).
"""

from repro.atlas.probe import Probe, VantagePoint
from repro.atlas.population import AtlasConfig, AtlasPopulation
from repro.atlas.measurement import Measurement, MeasurementResult, MeasurementSpec
from repro.atlas.results import ResultSet
from repro.atlas.datasets import load_results, save_results

__all__ = [
    "AtlasConfig",
    "AtlasPopulation",
    "Measurement",
    "MeasurementResult",
    "MeasurementSpec",
    "Probe",
    "ResultSet",
    "VantagePoint",
    "load_results",
    "save_results",
]
