"""Periodic DNS measurements from every vantage point.

A :class:`MeasurementSpec` mirrors a RIPE Atlas DNS measurement: a query
(name may contain the ``PROBEID`` placeholder, as the paper's §4
experiments use to defeat caching), an interval, and a duration.  The
scheduler issues one query per VP per round, with a stable per-VP start
offset inside the interval (Atlas spreads probes' queries in time), and
fires scheduled world *events* (renumbering, TTL changes, taking servers
down) between queries in global time order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.atlas.probe import VantagePoint
from repro.atlas.results import MeasurementResult, ResultSet


@dataclass(frozen=True)
class MeasurementSpec:
    """One Atlas-style recurring DNS measurement."""

    qname: str
    qtype: RdataType
    interval: float = 600.0
    duration: float = 7200.0
    start: float = 0.0
    #: Spread each VP's queries by a stable random offset within the
    #: interval (True matches Atlas scheduling).
    jitter: bool = True
    description: str = ""

    def rounds(self) -> int:
        return int(self.duration // self.interval)

    def qname_for(self, probe_id: int) -> Name:
        """Substitute the PROBEID placeholder (paper §4.2)."""
        return Name(self.qname.replace("PROBEID", f"p{probe_id}"))


@dataclass(frozen=True)
class ScheduledEvent:
    """A world mutation fired at a fixed virtual time during a run."""

    at: float
    action: Callable[[], None]
    label: str = ""


@dataclass
class MeasurementState:
    """A picklable mid-run cursor for :meth:`Measurement.run`.

    Everything the flattened kernel needs to continue from query
    ``position``: the results so far and how many events have fired.
    The schedule itself is *recomputed* on resume — it is a pure
    function of (spec, vantage points, seed), which a pickled
    :class:`Measurement` carries.  Checkpoint callbacks receive the live
    results list (pickle it immediately, don't keep it).
    """

    position: int
    event_index: int
    results: list[MeasurementResult]


@dataclass
class Measurement:
    """Runs a spec against a set of vantage points."""

    spec: MeasurementSpec
    vantage_points: list[VantagePoint]
    events: list[ScheduledEvent] = field(default_factory=list)
    seed: int = 0
    #: Optional telemetry hook, called as ``progress(done, total)`` every
    #: ``progress_every`` queries and once at the end of the run.  The
    #: ``repro run`` CLI and the runner's serial fallback use it to drive
    #: :class:`repro.runner.progress.ProgressTracker` displays.
    progress: Optional[Callable[[int, int], None]] = None
    progress_every: int = 1000

    def schedule(self, at: float, action: Callable[[], None], label: str = "") -> None:
        self.events.append(ScheduledEvent(at=at, action=action, label=label))

    def run(
        self,
        *,
        resume: Optional[MeasurementState] = None,
        checkpoint_every: int = 0,
        checkpoint: Optional[Callable[[MeasurementState], None]] = None,
    ) -> ResultSet:
        """Execute every round; returns the collected results.

        The hot loop is flattened: all per-probe state (qnames, bound
        stub queries, probe/VP columns) and the full time-sorted
        schedule are precomputed once per campaign, so each query costs
        one stub call plus one result row.  The RNG draw order is
        byte-identical to the historical per-probe loop.

        ``checkpoint`` (with ``checkpoint_every > 0``) is called with a
        :class:`MeasurementState` every that-many queries — the world
        snapshot hook.  ``resume`` continues a previous run from its
        cursor; the prelude (offsets, schedule) is deterministically
        recomputed, so only the cursor and results need to have been
        saved.
        """
        spec = self.spec
        vps = self.vantage_points
        interval = spec.interval
        jitter = spec.jitter
        rng = random.Random(self.seed ^ 0x3EA5)
        # Historical draw order: one uniform per VP, in VP order, only
        # when jitter is on (`jitter and ...` must not draw otherwise).
        offsets = [
            (rng.uniform(0.0, interval) if jitter else 0.0) for _ in vps
        ]

        # Flattened schedule: slot r*n+v is (round r, vp v); run in time
        # order so cache warm-up across VPs sharing a resolver is
        # realistic.  sorted() is stable, matching the historical
        # list.sort over round-major tuples.
        n_vps = len(vps)
        rounds = spec.rounds()
        total = rounds * n_vps
        times = [0.0] * total
        start = spec.start
        pos = 0
        for round_index in range(rounds):
            round_start = start + round_index * interval
            for v in range(n_vps):
                times[pos] = round_start + offsets[v]
                pos += 1
        order = sorted(range(total), key=times.__getitem__)

        # Per-VP columns, hoisted out of the hot loop.  Each probe asks
        # the same name every round: resolve the PROBEID substitution
        # once per probe and share it across all rounds.
        probe_ids = [vp.probe.probe_id for vp in vps]
        vp_ids = [vp.vp_id for vp in vps]
        resolver_addrs = [vp.resolver_address for vp in vps]
        regions = [vp.probe.region for vp in vps]
        asns = [vp.probe.asn for vp in vps]
        query_fns = [vp.stub.query for vp in vps]
        qtype = spec.qtype
        qname_memo: dict[int, Name] = {}
        qnames: list[Name] = []
        for probe_id in probe_ids:
            qname = qname_memo.get(probe_id)
            if qname is None:
                qname = spec.qname_for(probe_id)
                qname_memo[probe_id] = qname
            qnames.append(qname)

        pending_events = sorted(self.events, key=lambda event: event.at)
        n_events = len(pending_events)
        if resume is not None:
            results = list(resume.results)
            event_index = resume.event_index
            first = resume.position
        else:
            results = []
            event_index = 0
            first = 0

        # Answer tuples repeat massively (cache hits return the same
        # rrset), so memoize the rendered tuple per rdata tuple — rdatas
        # are frozen dataclasses, hashable by value.
        answer_memo: dict = {}
        progress = self.progress
        progress_every = self.progress_every
        append = results.append
        for i in range(first, total):
            slot = order[i]
            timestamp = times[slot]
            v = slot % n_vps
            while event_index < n_events and pending_events[event_index].at <= timestamp:
                pending_events[event_index].action()
                event_index += 1
            qname = qnames[v]
            answer = query_fns[v](qname, qtype, timestamp)
            rrsets = answer.answers
            if not rrsets:
                answers: tuple[str, ...] = ()
                ttl = None
            elif len(rrsets) == 1:
                rdatas = rrsets[0].rdatas
                answers = answer_memo.get(rdatas)
                if answers is None:
                    answers = tuple(str(rdata) for rdata in rdatas)
                    answer_memo[rdatas] = answers
                ttl = rrsets[-1].ttl
            else:
                answers = tuple(
                    str(rdata) for rrset in rrsets for rdata in rrset.rdatas
                )
                ttl = rrsets[-1].ttl
            append(
                MeasurementResult(
                    probe_id=probe_ids[v],
                    vp_id=vp_ids[v],
                    resolver_address=resolver_addrs[v],
                    region=regions[v],
                    asn=asns[v],
                    round_index=slot // n_vps,
                    timestamp=timestamp,
                    qname=qname,
                    qtype=qtype,
                    rcode=answer.rcode,
                    ttl=ttl,
                    answers=answers,
                    rtt=answer.rtt,
                    cache_hit=answer.cache_hit,
                    served_stale=answer.served_stale,
                )
            )
            done = len(results)
            if progress is not None and done % progress_every == 0:
                progress(done, total)
            if (
                checkpoint is not None
                and checkpoint_every > 0
                and (i + 1) % checkpoint_every == 0
                and i + 1 < total
            ):
                checkpoint(
                    MeasurementState(
                        position=i + 1, event_index=event_index, results=results
                    )
                )
        if progress is not None:
            progress(len(results), total)
        # Fire any events scheduled after the last query (end-of-run state).
        while event_index < n_events:
            pending_events[event_index].action()
            event_index += 1
        return ResultSet(results, spec=spec)


def run_once(
    vantage_points: list[VantagePoint],
    qname: str,
    qtype: RdataType,
    at: float = 0.0,
) -> ResultSet:
    """One-shot measurement from every VP (no rounds, no jitter)."""
    spec = MeasurementSpec(qname=qname, qtype=qtype, interval=1.0, duration=1.0, start=at, jitter=False)
    measurement = Measurement(spec=spec, vantage_points=vantage_points)
    return measurement.run()
