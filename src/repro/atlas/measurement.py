"""Periodic DNS measurements from every vantage point.

A :class:`MeasurementSpec` mirrors a RIPE Atlas DNS measurement: a query
(name may contain the ``PROBEID`` placeholder, as the paper's §4
experiments use to defeat caching), an interval, and a duration.  The
scheduler issues one query per VP per round, with a stable per-VP start
offset inside the interval (Atlas spreads probes' queries in time), and
fires scheduled world *events* (renumbering, TTL changes, taking servers
down) between queries in global time order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.atlas.probe import VantagePoint
from repro.atlas.results import MeasurementResult, ResultSet


@dataclass(frozen=True)
class MeasurementSpec:
    """One Atlas-style recurring DNS measurement."""

    qname: str
    qtype: RdataType
    interval: float = 600.0
    duration: float = 7200.0
    start: float = 0.0
    #: Spread each VP's queries by a stable random offset within the
    #: interval (True matches Atlas scheduling).
    jitter: bool = True
    description: str = ""

    def rounds(self) -> int:
        return int(self.duration // self.interval)

    def qname_for(self, probe_id: int) -> Name:
        """Substitute the PROBEID placeholder (paper §4.2)."""
        return Name(self.qname.replace("PROBEID", f"p{probe_id}"))


@dataclass(frozen=True)
class ScheduledEvent:
    """A world mutation fired at a fixed virtual time during a run."""

    at: float
    action: Callable[[], None]
    label: str = ""


@dataclass
class Measurement:
    """Runs a spec against a set of vantage points."""

    spec: MeasurementSpec
    vantage_points: list[VantagePoint]
    events: list[ScheduledEvent] = field(default_factory=list)
    seed: int = 0
    #: Optional telemetry hook, called as ``progress(done, total)`` every
    #: ``progress_every`` queries and once at the end of the run.  The
    #: ``repro run`` CLI and the runner's serial fallback use it to drive
    #: :class:`repro.runner.progress.ProgressTracker` displays.
    progress: Optional[Callable[[int, int], None]] = None
    progress_every: int = 1000

    def schedule(self, at: float, action: Callable[[], None], label: str = "") -> None:
        self.events.append(ScheduledEvent(at=at, action=action, label=label))

    def run(self) -> ResultSet:
        """Execute every round; returns the collected results."""
        rng = random.Random(self.seed ^ 0x3EA5)
        offsets = {
            vp.vp_id: (rng.uniform(0.0, self.spec.interval) if self.spec.jitter else 0.0)
            for vp in self.vantage_points
        }
        # Build the full (time, vp, round) schedule, then run in time order
        # so cache warm-up across VPs sharing a resolver is realistic.
        schedule: list[tuple[float, int, VantagePoint]] = []
        for round_index in range(self.spec.rounds()):
            round_start = self.spec.start + round_index * self.spec.interval
            for vp in self.vantage_points:
                schedule.append((round_start + offsets[vp.vp_id], round_index, vp))
        schedule.sort(key=lambda item: item[0])

        pending_events = sorted(self.events, key=lambda event: event.at)
        event_index = 0
        results: list[MeasurementResult] = []
        # Each probe asks the same name every round: resolve the PROBEID
        # substitution once per probe and reuse it across all rounds.
        qname_memo: dict[int, Name] = {}
        for timestamp, round_index, vp in schedule:
            while event_index < len(pending_events) and (
                pending_events[event_index].at <= timestamp
            ):
                pending_events[event_index].action()
                event_index += 1
            probe_id = vp.probe.probe_id
            qname = qname_memo.get(probe_id)
            if qname is None:
                qname = self.spec.qname_for(probe_id)
                qname_memo[probe_id] = qname
            answer = vp.stub.query(qname, self.spec.qtype, timestamp)
            results.append(
                MeasurementResult(
                    probe_id=vp.probe.probe_id,
                    vp_id=vp.vp_id,
                    resolver_address=vp.resolver_address,
                    region=vp.probe.region,
                    asn=vp.probe.asn,
                    round_index=round_index,
                    timestamp=timestamp,
                    qname=qname,
                    qtype=self.spec.qtype,
                    rcode=answer.rcode,
                    ttl=answer.ttl(),
                    answers=tuple(
                        str(rdata)
                        for rrset in answer.answers
                        for rdata in rrset.rdatas
                    ),
                    rtt=answer.rtt,
                    cache_hit=answer.cache_hit,
                    served_stale=answer.served_stale,
                )
            )
            if self.progress is not None and len(results) % self.progress_every == 0:
                self.progress(len(results), len(schedule))
        if self.progress is not None:
            self.progress(len(results), len(schedule))
        # Fire any events scheduled after the last query (end-of-run state).
        while event_index < len(pending_events):
            pending_events[event_index].action()
            event_index += 1
        return ResultSet(results, spec=self.spec)


def run_once(
    vantage_points: list[VantagePoint],
    qname: str,
    qtype: RdataType,
    at: float = 0.0,
) -> ResultSet:
    """One-shot measurement from every VP (no rounds, no jitter)."""
    spec = MeasurementSpec(qname=qname, qtype=qtype, interval=1.0, duration=1.0, start=at, jitter=False)
    measurement = Measurement(spec=spec, vantage_points=vantage_points)
    return measurement.run()
