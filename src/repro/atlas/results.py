"""Measurement result records and dataset summaries.

A :class:`ResultSet` applies the same hygiene the paper does: responses
that time out, return unexpected rcodes, or carry answers other than the
expected ones (hijacked probes, §3.2) are *discarded*; per-experiment
summaries report probes/VPs/queries/valid/discarded exactly like Table 2
and Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region


@dataclass(frozen=True)
class MeasurementResult:
    """One query from one VP in one round."""

    probe_id: int
    vp_id: str
    resolver_address: str
    region: Region
    asn: int
    round_index: int
    timestamp: float
    qname: Name
    qtype: RdataType
    rcode: Rcode
    ttl: Optional[int]
    answers: tuple[str, ...]
    rtt: float
    cache_hit: bool = False
    served_stale: bool = False

    @property
    def ok(self) -> bool:
        return self.rcode == Rcode.NOERROR and bool(self.answers)


@dataclass
class ResultSet:
    """All results of one measurement, with validity filtering."""

    results: list[MeasurementResult]
    spec: object = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[MeasurementResult]:
        return iter(self.results)

    # -- filtering -----------------------------------------------------------
    def valid(
        self, expect: Optional[Callable[[MeasurementResult], bool]] = None
    ) -> "ResultSet":
        """Responses with NOERROR and a non-empty expected answer."""
        keep = [
            result
            for result in self.results
            if result.ok and (expect is None or expect(result))
        ]
        return ResultSet(keep, spec=self.spec)

    def discarded(
        self, expect: Optional[Callable[[MeasurementResult], bool]] = None
    ) -> "ResultSet":
        valid_ids = {id(result) for result in self.valid(expect).results}
        return ResultSet(
            [result for result in self.results if id(result) not in valid_ids],
            spec=self.spec,
        )

    def filtered(self, predicate: Callable[[MeasurementResult], bool]) -> "ResultSet":
        return ResultSet([r for r in self.results if predicate(r)], spec=self.spec)

    def for_round(self, round_index: int) -> "ResultSet":
        return self.filtered(lambda r: r.round_index == round_index)

    # -- extraction -----------------------------------------------------------
    def ttls(self) -> list[int]:
        return [result.ttl for result in self.results if result.ttl is not None]

    def rtts(self) -> list[float]:
        return [result.rtt for result in self.results]

    def rtts_ms(self) -> list[float]:
        return [result.rtt * 1000.0 for result in self.results]

    def vp_ids(self) -> set[str]:
        return {result.vp_id for result in self.results}

    def probe_ids(self) -> set[int]:
        return {result.probe_id for result in self.results}

    def resolver_addresses(self) -> set[str]:
        return {result.resolver_address for result in self.results}

    def regions(self) -> set[Region]:
        return {result.region for result in self.results}

    # -- grouping -----------------------------------------------------------
    def by_vp(self) -> dict[str, list[MeasurementResult]]:
        grouped: dict[str, list[MeasurementResult]] = {}
        for result in self.results:
            grouped.setdefault(result.vp_id, []).append(result)
        for rows in grouped.values():
            rows.sort(key=lambda r: r.timestamp)
        return grouped

    def by_region(self) -> dict[Region, list[MeasurementResult]]:
        grouped: dict[Region, list[MeasurementResult]] = {}
        for result in self.results:
            grouped.setdefault(result.region, []).append(result)
        return grouped

    def by_answer(self) -> dict[tuple[str, ...], int]:
        """How many responses carried each answer set (Figure 6/7 series)."""
        counts: dict[tuple[str, ...], int] = {}
        for result in self.results:
            counts[result.answers] = counts.get(result.answers, 0) + 1
        return counts

    def answer_timeseries(
        self, bin_seconds: float = 600.0
    ) -> dict[str, dict[int, int]]:
        """Per-answer counts in time bins — the Figure 6/7 bar series."""
        series: dict[str, dict[int, int]] = {}
        for result in self.results:
            if not result.answers:
                continue
            key = result.answers[-1]
            bins = series.setdefault(key, {})
            index = int(result.timestamp // bin_seconds)
            bins[index] = bins.get(index, 0) + 1
        return series

    # -- summaries -------------------------------------------------------------
    def summary(
        self, expect: Optional[Callable[[MeasurementResult], bool]] = None
    ) -> dict[str, int]:
        """The Table 2/Table 3 bookkeeping for this dataset."""
        valid = self.valid(expect)
        timeouts = sum(1 for r in self.results if r.rcode == Rcode.SERVFAIL)
        return {
            "probes": len(self.probe_ids()),
            "probes_valid": len(valid.probe_ids()),
            "probes_discarded": len(self.probe_ids()) - len(valid.probe_ids()),
            "vps": len(self.vp_ids()),
            "queries": len(self.results),
            "timeouts": timeouts,
            "responses": len(self.results) - timeouts,
            "responses_valid": len(valid),
            "responses_discarded": len(self.results) - timeouts - len(valid),
            "resolvers": len(self.resolver_addresses()),
            "ases": len({r.asn for r in self.results}),
        }
