"""Probe population generation.

Builds a population with the structural properties the paper reports:

- probes spread across regions with the Atlas Europe skew,
- ~3 probes per AS on average, with about a third of ASes hosting
  several probes (§3.2),
- most probes using an on-network resolver a few ms away, a sizeable
  minority using shared public services (capping Google-like, or
  parent-centric OpenDNS-like), and some using both — so each probe yields
  one to three vantage points (~15k VPs from ~9k probes).

Resolvers inside one AS are shared between that AS's probes, which is what
spreads observed TTLs below the configured value (a second VP hitting a
warm cache sees the *remaining* TTL).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.dns.name import Name
from repro.dns.zone import Zone
from repro.net.latency import LatencyModel
from repro.net.topology import Region, Topology
from repro.net.transport import Network
from repro.resolver.policy import ResolverPolicy
from repro.resolver.recursive import RecursiveResolver
from repro.resolver.stub import StubResolver
from repro.atlas.probe import Probe, VantagePoint


@dataclass
class AtlasConfig:
    """Shape of the generated probe population."""

    probes: int = 900
    seed: int = 0
    #: First probe id (sharded campaigns offset each shard's range so
    #: probe ids stay globally unique across the merged ResultSet).
    probe_id_base: int = 0
    #: Mean probes per AS (paper: ~10k probes over 3.3k ASes).
    probes_per_as: float = 3.0
    #: Probability a probe's resolver list includes a public service /
    #: a local resolver (independent draws; at least one is forced).
    public_share: float = 0.25
    local_share: float = 0.90
    #: Probability a probe has a *second* local resolver (distinct cache).
    second_local_share: float = 0.10
    #: Probability a probe's local path goes through a caching forwarder
    #: in front of the AS resolver (§4.4's multi-layer infrastructure).
    forwarder_share: float = 0.12
    #: Behaviour mix for local (on-network) resolvers, by weight.
    local_mix: dict[str, float] = field(
        default_factory=lambda: {
            "child": 0.875,
            "parent": 0.03,
            "local-root": 0.03,
            "sticky": 0.035,
            "unlinked": 0.03,
        }
    )
    #: Public services: label -> (policy factory name, share among public
    #: picks, number of shared backends).
    public_services: dict[str, tuple[str, float, int]] = field(
        default_factory=lambda: {
            "google-like": ("capping", 0.70, 6),
            "opendns-like": ("parent", 0.30, 4),
        }
    )
    #: Give every generated resolver a default :class:`PredictPolicy`
    #: (refresh-ahead + RFC 8767 stale-while-revalidate) on top of its
    #: centricity behaviour.
    predict: bool = False


_POLICY_FACTORIES = {
    "child": ResolverPolicy.child_centric,
    "parent": ResolverPolicy.parent_centric,
    "capping": ResolverPolicy.capping,
    "local-root": ResolverPolicy.local_root,
    "sticky": ResolverPolicy.sticky_resolver,
    "unlinked": ResolverPolicy.unlinked,
}


class AtlasPopulation:
    """The generated probes, their resolvers, and derived vantage points."""

    def __init__(
        self,
        config: AtlasConfig,
        topology: Topology,
        network: Network,
        root_hints: dict[Name, str],
        root_zone: Optional[Zone] = None,
    ) -> None:
        self.config = config
        self.topology = topology
        self.network = network
        self._root_hints = dict(root_hints)
        self._root_zone = root_zone
        self._rng = random.Random(config.seed ^ 0xA71A5)
        self._latency = network.latency

        self.probes: list[Probe] = []
        self.resolver_label: dict[str, str] = {}
        self._as_resolvers: dict[int, list[RecursiveResolver]] = {}
        self._public_backends: dict[str, list[RecursiveResolver]] = {}

        self._build()

    # -- construction -----------------------------------------------------------
    def _build(self) -> None:
        as_count = max(1, int(self.config.probes / self.config.probes_per_as))
        ases = self.topology.create_ases(as_count)
        base = self.config.probe_id_base
        for probe_id in range(base, base + self.config.probes):
            autonomous_system = self._rng.choice(ases)
            endpoint = self.topology.create_endpoint(
                autonomous_system, name=f"probe-{probe_id}"
            )
            stubs = self._stubs_for(endpoint, probe_id)
            self.probes.append(Probe(probe_id=probe_id, endpoint=endpoint, stubs=stubs))

    def _stubs_for(self, endpoint, probe_id: int) -> list[StubResolver]:
        resolvers: list[RecursiveResolver] = []
        use_local = self._rng.random() < self.config.local_share
        use_public = self._rng.random() < self.config.public_share
        if not use_local and not use_public:
            use_local = True
        if use_local:
            local = self._local_resolver(endpoint.asn)
            if self._rng.random() < self.config.forwarder_share:
                local = self._forwarder_for(endpoint.asn, local)
            resolvers.append(local)
            if self._rng.random() < self.config.second_local_share:
                resolvers.append(self._local_resolver(endpoint.asn, force_new=True))
        if use_public:
            resolvers.append(self._public_resolver())
        unique: dict[str, RecursiveResolver] = {}
        for resolver in resolvers:
            unique.setdefault(resolver.address, resolver)
        return [
            StubResolver(endpoint, resolver, self._latency, seed=probe_id * 31 + i)
            for i, resolver in enumerate(unique.values())
        ]

    def _local_resolver(self, asn: int, force_new: bool = False) -> RecursiveResolver:
        pool = self._as_resolvers.setdefault(asn, [])
        if pool and not force_new:
            return self._rng.choice(pool)
        label = self._pick_local_label()
        policy = self._maybe_predictive(_POLICY_FACTORIES[label]())
        autonomous_system = next(
            a for a in self.topology.ases if a.asn == asn
        )
        endpoint = self.topology.create_endpoint(
            autonomous_system, name=f"local-res-as{asn}-{len(pool)}"
        )
        resolver = RecursiveResolver(
            endpoint=endpoint,
            network=self.network,
            root_hints=self._root_hints,
            policy=policy,
            root_zone=self._root_zone,
        )
        self.resolver_label[resolver.address] = label
        pool.append(resolver)
        return resolver

    def _forwarder_for(self, asn: int, upstream: RecursiveResolver):
        """A CPE/enterprise forwarder in front of the AS resolver (§4.4)."""
        from repro.resolver.forwarder import ForwardingResolver

        autonomous_system = next(a for a in self.topology.ases if a.asn == asn)
        endpoint = self.topology.create_endpoint(
            autonomous_system, name=f"fwd-as{asn}-{upstream.address}"
        )
        forwarder = ForwardingResolver(
            endpoint=endpoint, upstreams=[upstream], latency=self._latency
        )
        self.resolver_label[forwarder.address] = (
            "fwd+" + self.resolver_label.get(upstream.address, "child")
        )
        return forwarder

    def _maybe_predictive(self, policy: ResolverPolicy) -> ResolverPolicy:
        if not self.config.predict:
            return policy
        from repro.predict import PredictPolicy

        return policy.with_(predict=PredictPolicy())

    def _pick_local_label(self) -> str:
        labels = list(self.config.local_mix)
        weights = [self.config.local_mix[label] for label in labels]
        return self._rng.choices(labels, weights=weights, k=1)[0]

    def _public_resolver(self) -> RecursiveResolver:
        services = list(self.config.public_services)
        weights = [self.config.public_services[s][1] for s in services]
        service = self._rng.choices(services, weights=weights, k=1)[0]
        factory_name, _, backends = self.config.public_services[service]
        pool = self._public_backends.get(service)
        if pool is None:
            pool = []
            for backend in range(backends):
                region = Region.EU if backend % 2 == 0 else Region.NA
                endpoint = self.topology.endpoint_in_region(
                    region, name=f"{service}-{backend}"
                )
                resolver = RecursiveResolver(
                    endpoint=endpoint,
                    network=self.network,
                    root_hints=self._root_hints,
                    policy=self._maybe_predictive(
                        _POLICY_FACTORIES[factory_name]()
                    ),
                    root_zone=self._root_zone,
                )
                self.resolver_label[resolver.address] = service
                pool.append(resolver)
            self._public_backends[service] = pool
        return self._rng.choice(pool)

    # -- accessors -----------------------------------------------------------
    def vantage_points(self) -> list[VantagePoint]:
        vps: list[VantagePoint] = []
        for probe in self.probes:
            vps.extend(probe.vantage_points())
        return vps

    def unique_resolvers(self) -> list[RecursiveResolver]:
        seen: dict[str, RecursiveResolver] = {}
        for probe in self.probes:
            for stub in probe.stubs:
                seen.setdefault(stub.resolver.address, stub.resolver)
        return list(seen.values())

    def reset_caches(self) -> None:
        """Cold-start every resolver (between independent experiments)."""
        for resolver in self.unique_resolvers():
            resolver.cache.clear()

    def summary(self) -> dict[str, int]:
        vps = self.vantage_points()
        return {
            "probes": len(self.probes),
            "vps": len(vps),
            "resolvers": len(self.unique_resolvers()),
            "ases": len({probe.asn for probe in self.probes}),
        }
