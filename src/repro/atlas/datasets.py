"""Dataset export/import: JSON-lines serialization of measurement results.

The paper publishes its RIPE Atlas measurement datasets ([43]); this
module gives the reproduction the same property — any :class:`ResultSet`
can be written to a JSON-lines file and reloaded bit-identically, so
expensive simulation runs can be archived and re-analyzed without
re-running.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Union

from repro.atlas.results import MeasurementResult, ResultSet
from repro.dns.message import Rcode
from repro.dns.name import Name
from repro.dns.rdtypes import RdataType
from repro.net.topology import Region

PathLike = Union[str, pathlib.Path]

#: Format marker written into every row; bump when fields change.
SCHEMA_VERSION = 1


def result_to_dict(result: MeasurementResult) -> dict:
    return {
        "v": SCHEMA_VERSION,
        "probe_id": result.probe_id,
        "vp_id": result.vp_id,
        "resolver": result.resolver_address,
        "region": result.region.name,
        "asn": result.asn,
        "round": result.round_index,
        "ts": result.timestamp,
        "qname": str(result.qname),
        "qtype": result.qtype.name,
        "rcode": result.rcode.name,
        "ttl": result.ttl,
        "answers": list(result.answers),
        "rtt": result.rtt,
        "cache_hit": result.cache_hit,
        "served_stale": result.served_stale,
    }


def result_from_dict(row: dict) -> MeasurementResult:
    version = row.get("v", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported dataset schema version {version}")
    return MeasurementResult(
        probe_id=row["probe_id"],
        vp_id=row["vp_id"],
        resolver_address=row["resolver"],
        region=Region[row["region"]],
        asn=row["asn"],
        round_index=row["round"],
        timestamp=row["ts"],
        qname=Name(row["qname"]),
        qtype=RdataType[row["qtype"]],
        rcode=Rcode[row["rcode"]],
        ttl=row["ttl"],
        answers=tuple(row["answers"]),
        rtt=row["rtt"],
        cache_hit=row["cache_hit"],
        served_stale=row["served_stale"],
    )


def save_results(results: Union[ResultSet, Iterable[MeasurementResult]],
                 path: PathLike) -> int:
    """Write results as JSON lines; returns the number of rows written."""
    rows = list(results)
    target = pathlib.Path(path)
    with target.open("w", encoding="ascii") as handle:
        for result in rows:
            handle.write(json.dumps(result_to_dict(result), sort_keys=True))
            handle.write("\n")
    return len(rows)


def load_results(path: PathLike) -> ResultSet:
    """Read a JSON-lines dataset back into a :class:`ResultSet`."""
    source = pathlib.Path(path)
    results = []
    with source.open("r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                results.append(result_from_dict(json.loads(line)))
            except (KeyError, ValueError) as exc:
                raise ValueError(f"{source}:{line_number}: {exc}") from exc
    return ResultSet(results)
